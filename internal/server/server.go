// Package server implements mpsimd: an HTTP/JSON simulation service over
// the timing models and workload suite. It executes jobs on a bounded
// worker pool, memoizes results in a sharded content-addressed cache keyed
// by the canonical job tuple (a cache hit replays byte-identical JSON), and
// honors per-request deadlines by threading context cancellation into the
// models' cycle loops.
//
// Endpoints:
//
//	POST /v1/run        one simulation job (?debug=true adds a trace section)
//	POST /v1/sweep      a (workloads x models x hierarchies) batch
//	GET  /v1/models     registered timing models and named hierarchies
//	GET  /v1/workloads  the benchmark kernels
//	GET  /v1/stats      server metrics (jobs, cache, latency percentiles)
//	GET  /metrics       Prometheus text-format exposition
//
// Every response carries X-Mpsimd-Request-Id; /v1/run adds X-Mpsimd-Cache
// (hit|miss|coalesced) and X-Mpsimd-Trace (per-phase spans). Request logs
// go through the configured slog.Logger.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"multipass/internal/arch"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/obs"
	"multipass/internal/sim"
	"multipass/internal/workload"

	// Link the standard timing models into the sim registry so a bare
	// server binary serves them all.
	_ "multipass/internal/core"
	_ "multipass/internal/pipe/inorder"
	_ "multipass/internal/pipe/ooo"
	_ "multipass/internal/pipe/runahead"
)

// Config shapes a Server.
type Config struct {
	// Workers bounds concurrently executing simulations; 0 means
	// GOMAXPROCS.
	Workers int
	// DefaultTimeout applies to requests that do not set timeout_ms; 0
	// means no server-imposed deadline.
	DefaultTimeout time.Duration
	// MaxSweepJobs rejects sweeps whose grid exceeds it; 0 means the
	// default of 4096.
	MaxSweepJobs int
	// MaxCacheBytes bounds the result cache's byte footprint; 0 means the
	// default of 256 MiB. Entries beyond the budget are evicted
	// clock-style (second chance).
	MaxCacheBytes int64
	// Logger receives structured request and job logs; nil discards them.
	Logger *slog.Logger
}

// Cache dispositions: how runCached satisfied a request. Exactly one is
// counted per request, so hits + misses + coalesced equals the number of
// /v1/run requests plus sweep cells that reached the cache layer.
const (
	dispHit       = "hit"       // served from the result cache
	dispMiss      = "miss"      // executed (or attempted) a simulation
	dispCoalesced = "coalesced" // joined another request's in-flight execution
)

// Server is the mpsimd HTTP service.
type Server struct {
	cfg     Config
	cache   *resultCache
	log     *slog.Logger
	metrics *serverMetrics
	// sem is the worker pool: one token per concurrently executing
	// simulation.
	sem chan struct{}

	jobsExecuted atomic.Uint64
	jobsFailed   atomic.Uint64
	inFlight     atomic.Int64

	// flights coalesces concurrent executions of the same job: followers
	// wait for the leader's bytes instead of re-simulating.
	flightMu sync.Mutex
	flights  map[string]*flight

	// progs memoizes compiled programs and their pre-decoded traces, keyed
	// by the job fields that determine the binary (workload, scale, compile
	// options). A sweep then decodes each workload once and every model in
	// the grid reads the same trace.
	progMu sync.Mutex
	progs  map[string]*builtProgram

	start time.Time
}

// flight is one in-progress execution; done is closed once data/err are set.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// builtProgram is one memoized compilation: the binary, its initial image,
// and the pre-decoded oracle trace (nil when the workload is too long to
// trace, in which case runs fall back to the lazy interpreter). The build
// runs in its own goroutine and done is closed when the fields are set, so
// waiters can give up when their deadline expires without abandoning the
// build. The phase durations are kept so the triggering request can report
// them as spans.
type builtProgram struct {
	done       chan struct{}
	p          *isa.Program
	image      *arch.Memory
	tr         *sim.Trace
	err        error
	compileDur time.Duration
	traceDur   time.Duration
}

// progCacheCap bounds the program memo; the whole map is dropped when full
// (compilations are cheap relative to simulation, the memo exists to share
// traces within a sweep).
const progCacheCap = 64

// traceLimit caps pre-decoded traces; longer workloads use the lazy path.
const traceLimit = 1 << 22

// program returns the memoized compilation for the spec's binary-identity
// fields, compiling and tracing on first use. The build itself runs
// detached: a waiter whose ctx expires returns ctx.Err() immediately while
// the compilation finishes for later requests. The request that triggered
// the build reports compile and trace_decode spans on otr; memo hits
// report only their wait.
func (s *Server) program(ctx context.Context, spec JobSpec, otr *obs.Trace) (*isa.Program, *arch.Memory, *sim.Trace, error) {
	key := fmt.Sprintf("%s|%d|%t|%t|%d", spec.Workload, spec.Scale, spec.Schedule, spec.InsertRestarts, spec.Unroll)
	s.progMu.Lock()
	if s.progs == nil || len(s.progs) >= progCacheCap {
		s.progs = make(map[string]*builtProgram)
	}
	b, ok := s.progs[key]
	triggered := !ok
	if !ok {
		b = &builtProgram{done: make(chan struct{})}
		s.progs[key] = b
		go buildProgram(b, spec)
	}
	s.progMu.Unlock()

	wait := time.Now()
	select {
	case <-b.done:
	case <-ctx.Done():
		otr.Observe("compile", time.Since(wait))
		return nil, nil, nil, ctx.Err()
	}
	if triggered {
		otr.Observe("compile", b.compileDur)
		otr.Observe("trace_decode", b.traceDur)
	} else {
		otr.Observe("compile", time.Since(wait))
	}
	return b.p, b.image, b.tr, b.err
}

// buildProgram compiles and traces one memo entry, then publishes it by
// closing done. It never holds progMu: a slow compilation must not block
// memo lookups for other programs.
func buildProgram(b *builtProgram, spec JobSpec) {
	defer close(b.done)
	w, ok := workload.ByName(spec.Workload)
	if !ok {
		b.err = fmt.Errorf("unknown workload %q", spec.Workload)
		return
	}
	compileStart := time.Now()
	b.p, b.image, b.err = workload.Program(w, spec.Scale, spec.CompileOptions())
	b.compileDur = time.Since(compileStart)
	if b.err != nil {
		return
	}
	// A failed trace is not an error: the run interprets lazily and
	// reports the real fault, if any.
	traceStart := time.Now()
	if tr, err := sim.BuildTrace(b.p, b.image, traceLimit); err == nil {
		b.tr = tr
	}
	b.traceDur = time.Since(traceStart)
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSweepJobs <= 0 {
		cfg.MaxSweepJobs = 4096
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.MaxCacheBytes),
		log:     log,
		sem:     make(chan struct{}, cfg.Workers),
		flights: make(map[string]*flight),
		start:   time.Now(),
	}
	s.metrics = newServerMetrics(s)
	return s
}

// Handler returns the service's routed handler, wrapped in the
// observability envelope (request IDs, request logs, HTTP metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	return s.withObs(mux)
}

// writeJSON emits v with the canonical JSON encoder.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{SchemaVersion: APISchemaVersion, Error: fmt.Sprintf(format, args...)})
}

// statusFor maps a job error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style semantics
		// map best onto 503 in net/http terms.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// deadline derives the effective job context from the request timeout.
func (s *Server) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// execute runs one job under the worker pool and returns the marshaled
// canonical RunResponse. The caller has already missed the cache. key is
// the job's content address, used to label CPU profiles so pprof
// attributes simulation time to jobs.
func (s *Server) execute(ctx context.Context, spec JobSpec, key string) ([]byte, error) {
	tr := obs.FromContext(ctx)
	endQueue := tr.StartSpan("queue_wait")
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		endQueue()
		return nil, ctx.Err()
	}
	endQueue()
	defer func() { <-s.sem }()

	// The deadline may have expired while queued; don't start compiling
	// for a request that is already dead.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	s.inFlight.Add(1)
	start := time.Now()
	defer func() {
		s.inFlight.Add(-1)
		s.metrics.jobDuration.Observe(time.Since(start).Seconds())
	}()

	hier, ok := mem.ConfigByName(spec.Hier)
	if !ok {
		return nil, fmt.Errorf("unknown hierarchy %q", spec.Hier)
	}
	p, image, simTrace, err := s.program(ctx, spec, tr)
	if err != nil {
		return nil, err
	}
	m, err := sim.NewMachine(spec.Model, sim.ModelOptions{Hier: hier, MaxInsts: spec.MaxInsts})
	if err != nil {
		return nil, err
	}
	if tu, ok := m.(sim.TraceUser); ok {
		tu.UseTrace(simTrace)
	}
	s.jobsExecuted.Add(1)

	// Label the simulation for CPU profiles: `go tool pprof -tagfocus` can
	// then attribute time per job, model, or workload.
	simStart := time.Now()
	var res *sim.Result
	pprof.Do(ctx, pprof.Labels("job", key, "model", spec.Model, "workload", spec.Workload),
		func(ctx context.Context) {
			res, err = s.runModel(ctx, m, p, image)
		})
	simDur := time.Since(simStart)
	if err != nil {
		s.jobsFailed.Add(1)
		s.metrics.jobs.With(spec.Model, spec.Workload, "error").Inc()
		tr.Observe("simulate", simDur)
		return nil, err
	}
	s.metrics.jobs.With(spec.Model, spec.Workload, "ok").Inc()
	res.AddPhase("simulate", simDur)
	for _, ph := range res.Phases {
		tr.Observe(ph.Name, ph.Dur)
	}

	endMarshal := tr.StartSpan("marshal")
	data, err := json.Marshal(RunResponse{SchemaVersion: APISchemaVersion, Job: spec, Stats: res.Stats})
	endMarshal()
	return data, err
}

// runModel executes the model under a panic guard: a model bug (for example
// an internal consistency check firing mid-run) fails the one job with a
// descriptive error instead of killing the process. This matters doubly for
// sweeps, whose jobs run on bare goroutines — an unrecovered panic there
// would take down the whole server.
func (s *Server) runModel(ctx context.Context, m sim.Machine, p *isa.Program, image *arch.Memory) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("model %s panicked: %v", m.Name(), r)
			reqID := ""
			if tr := obs.FromContext(ctx); tr != nil {
				reqID = tr.ID
			}
			s.log.Error("model panicked",
				"request_id", reqID,
				"model", m.Name(),
				"panic", fmt.Sprint(r))
		}
	}()
	return m.Run(ctx, p, image)
}

// runCached returns the canonical response bytes for spec: from the result
// cache when the job already ran, from a concurrent in-flight execution when
// one exists, by executing otherwise. disp reports how the request was
// satisfied (dispHit, dispMiss, or dispCoalesced) and is counted exactly
// once per call, so the three counters always balance against request
// totals — a coalesced follower is no longer misaccounted as a miss.
func (s *Server) runCached(ctx context.Context, spec JobSpec) (data []byte, disp string, err error) {
	defer func() {
		switch disp {
		case dispHit:
			s.cache.hits.Add(1)
		case dispMiss:
			s.cache.misses.Add(1)
		case dispCoalesced:
			s.cache.coalesced.Add(1)
		}
	}()
	key := spec.Key()
	for {
		if data, ok := s.cache.get(key); ok {
			return data, dispHit, nil
		}

		s.flightMu.Lock()
		if f, ok := s.flights[key]; ok {
			// Follow the in-flight leader.
			s.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, dispCoalesced, ctx.Err()
			}
			if f.err == nil {
				return f.data, dispCoalesced, nil
			}
			// The leader failed — possibly on its own (shorter) deadline.
			// Retry from the top; this caller becomes a leader unless its
			// own context is also done.
			if err := ctx.Err(); err != nil {
				return nil, dispCoalesced, err
			}
			continue
		}
		// Re-check the cache before claiming leadership: a leader publishes
		// its bytes before removing its flight, so a request that missed
		// the first lookup but finds no flight here may already have a
		// result waiting — re-executing it would double-count a miss and
		// waste a worker.
		if data, ok := s.cache.get(key); ok {
			s.flightMu.Unlock()
			return data, dispHit, nil
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.flightMu.Unlock()

		data, err = s.execute(ctx, spec, key)
		if err == nil {
			s.cache.put(key, data)
		}
		f.data, f.err = data, err
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
		return data, dispMiss, err
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := normalize(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr := obs.FromContext(r.Context())
	if tr == nil {
		tr = obs.NewTrace("")
	}
	ctx, cancel := s.deadline(obs.WithTrace(r.Context(), tr), req.TimeoutMS)
	defer cancel()

	data, disp, err := s.runCached(ctx, spec)
	status := http.StatusOK
	if err != nil {
		status = statusFor(err)
	}
	s.log.Info("run",
		"request_id", tr.ID,
		"workload", spec.Workload, "model", spec.Model, "hier", spec.Hier,
		"scale", spec.Scale, "max_insts", spec.MaxInsts,
		"status", status, "cache", disp,
		"dur_ms", float64(tr.Elapsed())/float64(time.Millisecond),
	)
	if err != nil {
		writeError(w, status, "%s/%s/%s: %v", spec.Workload, spec.Model, spec.Hier, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerCache, disp)
	w.Header().Set(headerTrace, tr.HeaderValue())
	if debugRequested(r) {
		data = withTraceSection(data, tr)
	}
	w.Write(data)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Match the /v1/run contract: a negative timeout is a client error,
	// not something to silently fall through to the server default.
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "timeout_ms %d < 0", req.TimeoutMS)
		return
	}
	if len(req.Workloads) == 0 {
		for _, wl := range workload.All() {
			req.Workloads = append(req.Workloads, wl.Name)
		}
	}
	if len(req.Models) == 0 {
		req.Models = sim.Names()
	}
	if len(req.Hiers) == 0 {
		req.Hiers = mem.ConfigNames()
	}

	// Normalize the whole grid up front: an invalid axis value fails the
	// sweep before any simulation runs.
	var specs []JobSpec
	for _, wl := range req.Workloads {
		for _, hier := range req.Hiers {
			for _, model := range req.Models {
				rr := RunRequest{
					Workload: wl, Model: model, Hier: hier,
					Scale: req.Scale, Compile: req.Compile, MaxInsts: req.MaxInsts,
				}
				spec, err := normalize(&rr)
				if err != nil {
					writeError(w, http.StatusBadRequest, "%v", err)
					return
				}
				specs = append(specs, spec)
			}
		}
	}
	if len(specs) > s.cfg.MaxSweepJobs {
		writeError(w, http.StatusBadRequest, "sweep grid has %d jobs, limit %d", len(specs), s.cfg.MaxSweepJobs)
		return
	}

	tr := obs.FromContext(r.Context())
	if tr == nil {
		tr = obs.NewTrace("")
	}
	ctx, cancel := s.deadline(obs.WithTrace(r.Context(), tr), req.TimeoutMS)
	defer cancel()

	// Fan out; the worker pool inside execute bounds real concurrency.
	// Every job is accounted for: done, cached, or failed.
	resp := SweepResponse{SchemaVersion: APISchemaVersion, Jobs: make([]SweepJob, len(specs))}
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			jobStart := time.Now()
			job := SweepJob{Job: spec}
			data, disp, err := s.runCached(ctx, spec)
			switch {
			case err != nil:
				job.Status = JobFailed
				job.Error = err.Error()
			default:
				var rr RunResponse
				if err := json.Unmarshal(data, &rr); err != nil {
					job.Status = JobFailed
					job.Error = fmt.Sprintf("decode cached result: %v", err)
					break
				}
				job.Stats = &rr.Stats
				if disp == dispMiss {
					job.Status = JobDone
				} else {
					job.Status = JobCached
				}
			}
			resp.Jobs[i] = job
			s.log.Debug("sweep job",
				"request_id", tr.ID,
				"workload", spec.Workload, "model", spec.Model, "hier", spec.Hier,
				"status", job.Status, "cache", disp,
				"dur_ms", float64(time.Since(jobStart))/float64(time.Millisecond),
			)
		}(i, spec)
	}
	wg.Wait()

	for _, job := range resp.Jobs {
		resp.Summary.Total++
		switch job.Status {
		case JobDone:
			resp.Summary.Done++
		case JobCached:
			resp.Summary.Cached++
		default:
			resp.Summary.Failed++
		}
	}
	s.log.Info("sweep",
		"request_id", tr.ID,
		"jobs", resp.Summary.Total, "done", resp.Summary.Done,
		"cached", resp.Summary.Cached, "failed", resp.Summary.Failed,
		"dur_ms", float64(tr.Elapsed())/float64(time.Millisecond),
	)
	// A full span list over hundreds of jobs would bloat the header; the
	// sweep reports its shape and total only.
	w.Header().Set(headerTrace, fmt.Sprintf("id=%s;jobs=%d;total=%.3fms",
		tr.ID, resp.Summary.Total, float64(tr.Elapsed())/float64(time.Millisecond)))
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, ModelsResponse{
		SchemaVersion: APISchemaVersion,
		Models:        sim.Names(),
		Hierarchies:   mem.ConfigNames(),
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := WorkloadsResponse{SchemaVersion: APISchemaVersion}
	for _, wl := range workload.All() {
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name: wl.Name, Class: wl.Class, Description: wl.Description,
		})
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	// The percentile estimate reads the same fixed-bucket histogram that
	// /metrics exposes, replacing the old 1024-sample ring.
	const msPerSecond = 1000
	p50 := s.metrics.jobDuration.Quantile(0.50) * msPerSecond
	p99 := s.metrics.jobDuration.Quantile(0.99) * msPerSecond
	writeJSON(w, http.StatusOK, StatsResponse{
		SchemaVersion:  APISchemaVersion,
		Workers:        s.cfg.Workers,
		JobsExecuted:   s.jobsExecuted.Load(),
		JobsFailed:     s.jobsFailed.Load(),
		CacheHits:      s.cache.hits.Load(),
		CacheMisses:    s.cache.misses.Load(),
		CacheCoalesced: s.cache.coalesced.Load(),
		CacheEvictions: s.cache.evictions.Load(),
		CacheEntries:   s.cache.len(),
		CacheBytes:     s.cache.bytes(),
		InFlight:       s.inFlight.Load(),
		LatencyP50MS:   p50,
		LatencyP99MS:   p99,
		UptimeSeconds:  time.Since(s.start).Seconds(),
	})
}
