package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"multipass/internal/obs"
)

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	return string(body)
}

// TestMetricsScrapeGolden: after one successful and one failed job, the
// exposition is well-formed, every expected family is declared with its
// type, and the per-job counters carry the exact expected values.
func TestMetricsScrapeGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "inorder"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run status %d", resp.StatusCode)
	}
	// MaxInsts forces a mid-run failure, exercising the error status label.
	resp = postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "inorder", MaxInsts: 100})
	readBody(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("limited run status %d, want 500", resp.StatusCode)
	}

	out := scrapeMetrics(t, ts.URL)
	if _, err := obs.Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("scrape does not lint: %v\n%s", err, out)
	}

	// The family catalog is API: renames or type changes break dashboards.
	for family, kind := range map[string]string{
		"mpsimd_jobs_total":            "counter",
		"mpsimd_job_duration_seconds":  "histogram",
		"mpsimd_http_requests_total":   "counter",
		"mpsimd_cache_hits_total":      "counter",
		"mpsimd_cache_misses_total":    "counter",
		"mpsimd_cache_coalesced_total": "counter",
		"mpsimd_cache_evictions_total": "counter",
		"mpsimd_cache_entries":         "gauge",
		"mpsimd_cache_bytes":           "gauge",
		"mpsimd_workers":               "gauge",
		"mpsimd_workers_busy":          "gauge",
		"mpsimd_in_flight_jobs":        "gauge",
		"mpsimd_uptime_seconds":        "gauge",
		"go_goroutines":                "gauge",
		"go_gc_cycles_total":           "counter",
	} {
		want := fmt.Sprintf("# TYPE %s %s\n", family, kind)
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", strings.TrimSpace(want))
		}
	}

	for _, want := range []string{
		`mpsimd_jobs_total{model="inorder",workload="crafty",status="ok"} 1`,
		`mpsimd_jobs_total{model="inorder",workload="crafty",status="error"} 1`,
		"mpsimd_cache_misses_total 2",
		"mpsimd_cache_hits_total 0",
		"mpsimd_cache_coalesced_total 0",
		"mpsimd_cache_entries 1",
		"mpsimd_job_duration_seconds_count 2",
		`mpsimd_job_duration_seconds_bucket{le="+Inf"} 2`,
		`mpsimd_http_requests_total{path="/v1/run",code="200"} 1`,
		`mpsimd_http_requests_total{path="/v1/run",code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
}

// TestStatsAccountingBalance: with one job requested 16 times concurrently,
// exactly one request executes and every other is a hit or a coalesced
// flight join — hits + misses + coalesced equals the request total. The
// pre-fix code counted flight followers as misses (and their joins never as
// hits), so this fails on it.
func TestStatsAccountingBalance(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	const n = 16
	req := RunRequest{Workload: "gzip", Model: "multipass"}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			readBody(t, resp)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if disp := resp.Header.Get("X-Mpsimd-Cache"); disp != "hit" && disp != "miss" && disp != "coalesced" {
				errs[i] = fmt.Errorf("cache header %q", disp)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	st := getStats(t, ts.URL)
	if st.CacheMisses != 1 {
		t.Errorf("misses = %d, want exactly 1 execution for 1 distinct job", st.CacheMisses)
	}
	if got := st.CacheHits + st.CacheMisses + st.CacheCoalesced; got != n {
		t.Errorf("hits %d + misses %d + coalesced %d = %d, want %d requests",
			st.CacheHits, st.CacheMisses, st.CacheCoalesced, got, n)
	}
	if st.JobsExecuted != 1 {
		t.Errorf("jobs_executed = %d, want 1", st.JobsExecuted)
	}
	if st.CacheBytes <= 0 {
		t.Errorf("cache_bytes = %d, want > 0 with one cached entry", st.CacheBytes)
	}
}

// TestRunDebugTrace: ?debug=true adds a trace section whose request ID
// matches the response header, with every execution phase present; the
// stats portion stays byte-identical to the cached body.
func TestRunDebugTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/run?debug=true", RunRequest{Workload: "crafty", Model: "multipass"})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug run status %d: %s", resp.StatusCode, body)
	}
	reqID := resp.Header.Get("X-Mpsimd-Request-Id")
	if len(reqID) != 16 {
		t.Errorf("generated request id %q, want 16 hex chars", reqID)
	}
	traceHeader := resp.Header.Get("X-Mpsimd-Trace")
	if !strings.HasPrefix(traceHeader, "id="+reqID) {
		t.Errorf("trace header %q does not lead with id=%s", traceHeader, reqID)
	}

	var dbg struct {
		RunResponse
		Trace obs.TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatalf("decode debug body: %v\n%s", err, body)
	}
	if dbg.Trace.RequestID != reqID {
		t.Errorf("trace.request_id = %q, header id = %q", dbg.Trace.RequestID, reqID)
	}
	if dbg.Stats.Cycles == 0 {
		t.Error("debug body lost the stats section")
	}
	have := map[string]bool{}
	for _, sp := range dbg.Trace.Spans {
		have[sp.Name] = true
	}
	for _, want := range []string{"queue_wait", "compile", "trace_decode", "simulate", "marshal"} {
		if !have[want] {
			t.Errorf("trace spans missing %q (got %v)", want, dbg.Trace.Spans)
		}
	}

	// A plain request for the same job replays the cached bytes, which must
	// equal the debug body with its trace section removed.
	resp2 := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "multipass"})
	cachedBody := readBody(t, resp2)
	if got := resp2.Header.Get("X-Mpsimd-Cache"); got != "hit" {
		t.Fatalf("second run disposition %q, want hit", got)
	}
	idx := bytes.Index(body, []byte(`,"trace":`))
	if idx < 0 {
		t.Fatal("debug body has no trace section")
	}
	spliced := append(append([]byte{}, body[:idx]...), '}')
	if !bytes.Equal(bytes.TrimSpace(spliced), bytes.TrimSpace(cachedBody)) {
		t.Errorf("debug body is not cached bytes + trace:\n debug: %s\ncached: %s", body, cachedBody)
	}
}

// logCapture is a concurrency-safe sink for slog JSON output.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *logCapture) lines(t *testing.T) []map[string]any {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []map[string]any
	for _, line := range bytes.Split(c.buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("log line not JSON: %v: %s", err, line)
		}
		out = append(out, m)
	}
	return out
}

// TestRequestIDPropagation: a client-supplied request ID flows through a
// sweep — echoed on the response and stamped on every per-job log record.
func TestRequestIDPropagation(t *testing.T) {
	capture := &logCapture{}
	logger := slog.New(slog.NewJSONHandler(capture, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Config{Workers: 4, Logger: logger})

	const reqID = "sweep-test-42"
	body, _ := json.Marshal(SweepRequest{
		Workloads: []string{"crafty", "gzip"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base"},
	})
	httpReq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("X-Mpsimd-Request-Id", reqID)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	respBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, respBody)
	}
	if got := resp.Header.Get("X-Mpsimd-Request-Id"); got != reqID {
		t.Errorf("response id %q, want %q", got, reqID)
	}
	if got := resp.Header.Get("X-Mpsimd-Trace"); !strings.Contains(got, "id="+reqID) || !strings.Contains(got, "jobs=4") {
		t.Errorf("sweep trace header = %q", got)
	}

	jobLogs := 0
	for _, rec := range capture.lines(t) {
		if rec["msg"] == "sweep job" {
			jobLogs++
			if rec["request_id"] != reqID {
				t.Errorf("sweep job log request_id = %v, want %q", rec["request_id"], reqID)
			}
			if rec["status"] == "" || rec["model"] == "" {
				t.Errorf("sweep job log missing fields: %v", rec)
			}
		}
	}
	if jobLogs != 4 {
		t.Errorf("got %d per-job log records, want 4", jobLogs)
	}

	// Hostile inbound IDs are sanitized, not reflected verbatim.
	httpReq, err = http.NewRequest(http.MethodGet, ts.URL+"/v1/models", nil)
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("X-Mpsimd-Request-Id", "evil id<script>")
	resp, err = http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if got := resp.Header.Get("X-Mpsimd-Request-Id"); got != "evilidscript" {
		t.Errorf("sanitized id = %q, want %q", got, "evilidscript")
	}
}

// TestConcurrentScrapesDuringSweep: /metrics and /v1/stats stay well-formed
// while a full 72-job sweep hammers the counters from every worker. Run
// under -race this is the data-race proof for the whole metrics layer.
func TestConcurrentScrapesDuringSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep")
	}
	_, ts := newTestServer(t, Config{Workers: 8})

	done := make(chan struct{})
	var sweepErr error
	go func() {
		defer close(done)
		resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
			Models: []string{"inorder", "multipass"},
			Hiers:  []string{"base", "config1", "config2"},
		})
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			sweepErr = fmt.Errorf("sweep status %d: %s", resp.StatusCode, body)
			return
		}
		var sr SweepResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			sweepErr = err
			return
		}
		if sr.Summary.Total != 72 || sr.Summary.Failed != 0 {
			sweepErr = fmt.Errorf("summary %+v, want 72 jobs none failed", sr.Summary)
		}
	}()

	scrapes := 0
	for {
		select {
		case <-done:
			if sweepErr != nil {
				t.Fatal(sweepErr)
			}
			if scrapes == 0 {
				t.Fatal("sweep finished before any scrape")
			}
			// Final consistency: a post-sweep scrape lints and the stats
			// accounting balances against 72 sweep cells.
			out := scrapeMetrics(t, ts.URL)
			if _, err := obs.Lint(strings.NewReader(out)); err != nil {
				t.Fatalf("final scrape does not lint: %v", err)
			}
			st := getStats(t, ts.URL)
			if got := st.CacheHits + st.CacheMisses + st.CacheCoalesced; got != 72 {
				t.Errorf("hits %d + misses %d + coalesced %d = %d, want 72",
					st.CacheHits, st.CacheMisses, st.CacheCoalesced, got)
			}
			if st.InFlight != 0 {
				t.Errorf("in_flight = %d after sweep", st.InFlight)
			}
			return
		default:
			out := scrapeMetrics(t, ts.URL)
			if _, err := obs.Lint(strings.NewReader(out)); err != nil {
				t.Fatalf("mid-sweep scrape does not lint: %v", err)
			}
			getStats(t, ts.URL)
			scrapes++
		}
	}
}
