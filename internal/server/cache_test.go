package server

import (
	"fmt"
	"testing"
)

// TestShardDistribution: real job keys (hex SHA-256) must reach every
// shard. The pre-fix picker hashed only the first hex character, so 16
// possible bytes could never cover 32 shards — this test fails on that
// code by construction.
func TestShardDistribution(t *testing.T) {
	counts := make(map[uint32]int)
	n := 0
	for scale := 1; scale <= 64; scale++ {
		for _, model := range []string{"inorder", "multipass", "runahead", "ooo"} {
			for _, wl := range []string{"mcf", "gzip", "crafty", "twolf"} {
				spec := JobSpec{Workload: wl, Model: model, Hier: "base", Scale: scale, Unroll: 1}
				counts[shardIndex(spec.Key())]++
				n++
			}
		}
	}
	if len(counts) != cacheShards {
		t.Fatalf("%d job keys landed on %d of %d shards: %v", n, len(counts), cacheShards, counts)
	}
	// No shard should dominate: with 1024 uniform keys over 32 shards the
	// expected load is 32; 4x that means the hash is badly skewed.
	for shard, c := range counts {
		if c > 4*n/cacheShards {
			t.Errorf("shard %d holds %d of %d keys — skewed", shard, c, n)
		}
	}
}

// TestShardIndexRange: every index is in [0, cacheShards).
func TestShardIndexRange(t *testing.T) {
	for _, key := range []string{"", "a", "0123456789abcdef"} {
		if i := shardIndex(key); i >= cacheShards {
			t.Errorf("shardIndex(%q) = %d out of range", key, i)
		}
	}
}

// TestCacheEviction: a byte-bounded cache under sustained distinct inserts
// stays under budget, evicts, and still serves what it kept.
func TestCacheEviction(t *testing.T) {
	const budget = 64 << 10 // 64 KiB total, 2 KiB per shard
	c := newResultCache(budget, "")
	payload := make([]byte, 2048)
	const inserts = 512
	for i := 0; i < inserts; i++ {
		key := JobSpec{Workload: "mcf", Model: "inorder", Hier: "base", Scale: i + 1}.Key()
		c.put(key, payload)
	}

	if ev := c.evictions.Load(); ev == 0 {
		t.Fatal("no evictions after inserting 1 MiB into a 64 KiB cache")
	}
	if c.len() >= inserts {
		t.Errorf("cache holds %d entries, want fewer than %d inserted", c.len(), inserts)
	}
	// Budget holds per shard up to one entry of slack (a shard never evicts
	// its last entry).
	perShard := int64(budget / cacheShards)
	slack := int64(len(payload)) + 64 + entryOverhead
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		b, n, ringN := s.bytes, len(s.m), len(s.ring)
		s.mu.RUnlock()
		if n != ringN {
			t.Errorf("shard %d: map %d entries vs ring %d", i, n, ringN)
		}
		if b > perShard+slack {
			t.Errorf("shard %d: %d bytes over per-shard budget %d", i, b, perShard)
		}
	}

	// Total accounting matches the shards.
	var want int64
	for i := range c.shards {
		c.shards[i].mu.RLock()
		want += c.shards[i].bytes
		c.shards[i].mu.RUnlock()
	}
	if got := c.bytes(); got != want {
		t.Errorf("totalBytes %d != shard sum %d", got, want)
	}

	// Survivors are still served; evicted keys miss.
	hits := 0
	for i := 0; i < inserts; i++ {
		key := JobSpec{Workload: "mcf", Model: "inorder", Hier: "base", Scale: i + 1}.Key()
		if data, ok := c.get(key); ok {
			hits++
			if len(data) != len(payload) {
				t.Fatalf("survivor %d returned %d bytes", i, len(data))
			}
		}
	}
	if hits == 0 || hits >= inserts {
		t.Errorf("post-eviction survivors = %d of %d, want some but not all", hits, inserts)
	}
}

// TestCacheSecondChance: a hot entry (its ref bit set by gets) survives an
// eviction pass that removes cold entries around it.
func TestCacheSecondChance(t *testing.T) {
	c := newResultCache(cacheShards*1024, "") // 1 KiB per shard
	payload := make([]byte, 300)

	// Find keys that land on one shard so the clock competition is real.
	var keys []string
	for i := 0; len(keys) < 8; i++ {
		key := fmt.Sprintf("synthetic-%d", i)
		if shardIndex(key) == 0 {
			keys = append(keys, key)
		}
	}
	hot := keys[0]
	c.put(hot, payload)
	for _, k := range keys[1:] {
		// Keep the hot entry referenced while cold entries pour in.
		if _, ok := c.get(hot); !ok {
			t.Fatal("hot entry evicted while referenced")
		}
		c.put(k, payload)
	}
	if _, ok := c.get(hot); !ok {
		t.Error("hot entry evicted despite second-chance references")
	}
	if c.evictions.Load() == 0 {
		t.Error("no evictions: shard budget not exercised")
	}
}

// TestCacheDuplicatePut: re-inserting an existing key neither double-counts
// bytes nor duplicates the ring slot.
func TestCacheDuplicatePut(t *testing.T) {
	c := newResultCache(1<<20, "")
	key := JobSpec{Workload: "mcf", Model: "inorder", Hier: "base", Scale: 1}.Key()
	c.put(key, []byte("payload"))
	before := c.bytes()
	c.put(key, []byte("payload"))
	if got := c.bytes(); got != before {
		t.Errorf("duplicate put changed bytes %d -> %d", before, got)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}
