package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"multipass/internal/compile"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// APISchemaVersion versions every response body of the v1 endpoints. Bump on
// any wire-visible change.
const APISchemaVersion = 1

// CompileOverrides is the subset of compiler options a request may vary.
// Nil fields keep the paper-standard defaults, so the canonical form of an
// untouched request equals the canonical form of an explicit-default one.
type CompileOverrides struct {
	// Schedule toggles list scheduling into issue groups.
	Schedule *bool `json:"schedule,omitempty"`
	// InsertRestarts toggles the §3.3 critical-load RESTART insertion.
	InsertRestarts *bool `json:"insert_restarts,omitempty"`
	// Unroll overrides the unrolling factor (0 or 1 disables).
	Unroll *int `json:"unroll,omitempty"`
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Workload string `json:"workload"`
	Model    string `json:"model"`
	// Hier names the cache hierarchy (default "base").
	Hier string `json:"hier,omitempty"`
	// Scale multiplies the workload's dynamic length (default 1).
	Scale   int               `json:"scale,omitempty"`
	Compile *CompileOverrides `json:"compile,omitempty"`
	// MaxInsts, when nonzero, caps the dynamic instruction count.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// TimeoutMS bounds this request's simulation time; 0 uses the server
	// default. The timeout is not part of the job identity.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobSpec is the canonical, fully-defaulted identity of one simulation job:
// the tuple the result cache is keyed on. Two requests that normalize to the
// same JobSpec are the same job and share one cached result.
type JobSpec struct {
	Workload       string `json:"workload"`
	Model          string `json:"model"`
	Hier           string `json:"hier"`
	Scale          int    `json:"scale"`
	Schedule       bool   `json:"schedule"`
	InsertRestarts bool   `json:"insert_restarts"`
	Unroll         int    `json:"unroll"`
	MaxInsts       uint64 `json:"max_insts"`
}

// Key returns the content address of the job: the hex SHA-256 of the
// canonical JSON encoding of the spec.
func (j JobSpec) Key() string {
	data, err := json.Marshal(j)
	if err != nil {
		// JobSpec is a flat struct of marshalable fields; this cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// CompileOptions materializes the spec's compiler configuration.
func (j JobSpec) CompileOptions() compile.Options {
	opts := compile.DefaultOptions()
	opts.Schedule = j.Schedule
	opts.InsertRestarts = j.InsertRestarts
	opts.Unroll = j.Unroll
	return opts
}

// normalize validates a RunRequest against the registries and returns its
// canonical JobSpec.
func normalize(req *RunRequest) (JobSpec, error) {
	def := compile.DefaultOptions()
	spec := JobSpec{
		Workload:       req.Workload,
		Model:          req.Model,
		Hier:           req.Hier,
		Scale:          req.Scale,
		Schedule:       def.Schedule,
		InsertRestarts: def.InsertRestarts,
		Unroll:         def.Unroll,
		MaxInsts:       req.MaxInsts,
	}
	if spec.Hier == "" {
		spec.Hier = "base"
	}
	if spec.Scale == 0 {
		spec.Scale = 1
	}
	if c := req.Compile; c != nil {
		if c.Schedule != nil {
			spec.Schedule = *c.Schedule
		}
		if c.InsertRestarts != nil {
			spec.InsertRestarts = *c.InsertRestarts
		}
		if c.Unroll != nil {
			spec.Unroll = *c.Unroll
		}
	}

	if spec.Workload == "" {
		return spec, fmt.Errorf("missing workload")
	}
	if _, ok := workload.ByName(spec.Workload); !ok {
		return spec, fmt.Errorf("unknown workload %q", spec.Workload)
	}
	if spec.Model == "" {
		return spec, fmt.Errorf("missing model")
	}
	if _, ok := sim.Lookup(spec.Model); !ok {
		return spec, fmt.Errorf("unknown model %q (see /v1/models)", spec.Model)
	}
	if _, ok := mem.ConfigByName(spec.Hier); !ok {
		return spec, fmt.Errorf("unknown hierarchy %q (have %v)", spec.Hier, mem.ConfigNames())
	}
	if spec.Scale < 1 {
		return spec, fmt.Errorf("scale %d < 1", spec.Scale)
	}
	if spec.Unroll < 0 {
		return spec, fmt.Errorf("unroll %d < 0", spec.Unroll)
	}
	if req.TimeoutMS < 0 {
		return spec, fmt.Errorf("timeout_ms %d < 0", req.TimeoutMS)
	}
	return spec, nil
}

// RunResponse is the body of POST /v1/run — and exactly the bytes the result
// cache stores, so a cache hit replays a byte-identical body.
type RunResponse struct {
	SchemaVersion int       `json:"schema_version"`
	Job           JobSpec   `json:"job"`
	Stats         sim.Stats `json:"stats"`
}

// SweepRequest is the body of POST /v1/sweep: the cross product of the three
// axes. Empty axes default to everything the registries enumerate.
type SweepRequest struct {
	Workloads []string          `json:"workloads,omitempty"`
	Models    []string          `json:"models,omitempty"`
	Hiers     []string          `json:"hiers,omitempty"`
	Scale     int               `json:"scale,omitempty"`
	Compile   *CompileOverrides `json:"compile,omitempty"`
	MaxInsts  uint64            `json:"max_insts,omitempty"`
	// TimeoutMS bounds the whole sweep; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Sweep job statuses.
const (
	JobDone   = "done"   // executed by this request
	JobCached = "cached" // served from the result cache
	JobFailed = "failed" // error reported in Error
)

// SweepJob is one cell of a sweep result.
type SweepJob struct {
	Job    JobSpec    `json:"job"`
	Status string     `json:"status"`
	Error  string     `json:"error,omitempty"`
	Stats  *sim.Stats `json:"stats,omitempty"`
}

// SweepSummary accounts for every job of a sweep: Total = Done+Cached+Failed.
type SweepSummary struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Cached int `json:"cached"`
	Failed int `json:"failed"`
}

// SweepResponse is the body of POST /v1/sweep.
type SweepResponse struct {
	SchemaVersion int          `json:"schema_version"`
	Jobs          []SweepJob   `json:"jobs"`
	Summary       SweepSummary `json:"summary"`
}

// ModelsResponse is the body of GET /v1/models, enumerated from the sim
// registry.
type ModelsResponse struct {
	SchemaVersion int      `json:"schema_version"`
	Models        []string `json:"models"`
	Hierarchies   []string `json:"hierarchies"`
}

// WorkloadInfo describes one kernel in GET /v1/workloads.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
}

// WorkloadsResponse is the body of GET /v1/workloads.
type WorkloadsResponse struct {
	SchemaVersion int            `json:"schema_version"`
	Workloads     []WorkloadInfo `json:"workloads"`
}

// StatsResponse is the body of GET /v1/stats: server-level metrics.
type StatsResponse struct {
	SchemaVersion int `json:"schema_version"`
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// JobsExecuted counts simulations actually run (cache misses).
	JobsExecuted uint64 `json:"jobs_executed"`
	// JobsFailed counts executed simulations that returned an error.
	JobsFailed uint64 `json:"jobs_failed"`
	// CacheHits, CacheMisses, and CacheCoalesced partition every request
	// that reached the cache layer: served from cache, executed, or joined
	// an in-flight execution of the same job. They sum to the request
	// total.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
	// CacheEvictions counts entries evicted by the byte-budget clock.
	CacheEvictions uint64 `json:"cache_evictions"`
	// CacheEntries is the current number of cached results.
	CacheEntries int `json:"cache_entries"`
	// CacheBytes is the cache footprint charged against MaxCacheBytes.
	CacheBytes int64 `json:"cache_bytes"`
	// InFlight is the number of simulations executing right now.
	InFlight int64 `json:"in_flight"`
	// LatencyP50MS/LatencyP99MS summarize executed-job wall time over a
	// sliding window of recent jobs.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
}
