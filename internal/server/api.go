package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"multipass/internal/compile"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// APISchemaVersion versions every response body of the v1 endpoints, echoed
// both in the schema_version body field and the Mpsimd-Api-Version response
// header. Bump on any wire-visible change.
//
// v2: uniform error envelope with stable codes; /v1/models and
// /v1/workloads return objects (?compat=names restores v1 shapes);
// /v1/sweep?stream=true NDJSON; /v1/worker/health.
const APISchemaVersion = 2

// HeaderAPIVersion is stamped on every /v1/* response so clients can detect
// the schema without parsing a body.
const HeaderAPIVersion = "Mpsimd-Api-Version"

// CompileOverrides is the subset of compiler options a request may vary.
// Nil fields keep the paper-standard defaults, so the canonical form of an
// untouched request equals the canonical form of an explicit-default one.
type CompileOverrides struct {
	// Schedule toggles list scheduling into issue groups.
	Schedule *bool `json:"schedule,omitempty"`
	// InsertRestarts toggles the §3.3 critical-load RESTART insertion.
	InsertRestarts *bool `json:"insert_restarts,omitempty"`
	// Unroll overrides the unrolling factor (0 or 1 disables).
	Unroll *int `json:"unroll,omitempty"`
}

// SampleOverrides opts a request into SMARTS-style interval sampling: the
// job is checkpointed by a fast functional pass and its intervals simulate
// in parallel, with warm-up stats discarded. Retired counts and final
// architectural state are exact; cycle counts carry a small documented error
// (see DESIGN.md §8), which is why sampling is part of the job identity.
type SampleOverrides struct {
	// Interval is the checkpoint spacing in retired instructions; it must
	// be at least MinSampleInterval (checkpoints hold full memory images,
	// so a tiny interval on a long workload is a memory bomb).
	Interval uint64 `json:"interval"`
	// Warmup is the detailed warm-up length before each interval, whose
	// stats are discarded; 0 means interval/4 (filled during
	// normalization, so explicit and defaulted forms share a cache key).
	Warmup uint64 `json:"warmup,omitempty"`
	// Period > 1 selects sparse SMARTS measurement: only every Period-th
	// interval is simulated and the cycle counts are extrapolated (retired
	// count and final state stay exact). 0 and 1 both mean full coverage
	// and normalize identically.
	Period uint64 `json:"period,omitempty"`
}

// MinSampleInterval floors sample.interval: each checkpoint carries a full
// memory image and warm cache tags, and the interval count is what bounds
// how many of those a single request can make the server materialize.
const MinSampleInterval = 1024

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Workload string `json:"workload"`
	Model    string `json:"model"`
	// Hier names the cache hierarchy (default "base").
	Hier string `json:"hier,omitempty"`
	// Scale multiplies the workload's dynamic length (default 1).
	Scale   int               `json:"scale,omitempty"`
	Compile *CompileOverrides `json:"compile,omitempty"`
	// MaxInsts, when nonzero, caps the dynamic instruction count.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// Sample, when non-nil, runs the job with interval sampling.
	Sample *SampleOverrides `json:"sample,omitempty"`
	// TimeoutMS bounds this request's simulation time; 0 uses the server
	// default. The timeout is not part of the job identity.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// ProgramRef, when non-nil, points at a pre-built program bundle the
	// executing server may fetch instead of compiling the workload itself.
	// It is transport metadata from the fabric coordinator — never part of
	// the job identity, and ignored when the fetch fails (the server just
	// builds locally).
	ProgramRef *ProgramRef `json:"program_ref,omitempty"`
}

// ProgramRef identifies a shared program bundle: where to fetch it
// (GET {Source}/v1/fabric/program?key={Key}) and the SHA-256 the fetched
// bytes must hash to. The key is the program identity — the job fields
// that determine the compiled binary (see ProgramKey).
type ProgramRef struct {
	Source string `json:"source"`
	Key    string `json:"key"`
	Sum    string `json:"sum"`
}

// JobSpec is the canonical, fully-defaulted identity of one simulation job:
// the tuple the result cache is keyed on. Two requests that normalize to the
// same JobSpec are the same job and share one cached result.
type JobSpec struct {
	Workload       string `json:"workload"`
	Model          string `json:"model"`
	Hier           string `json:"hier"`
	Scale          int    `json:"scale"`
	Schedule       bool   `json:"schedule"`
	InsertRestarts bool   `json:"insert_restarts"`
	Unroll         int    `json:"unroll"`
	MaxInsts       uint64 `json:"max_insts"`
	// SampleInterval/SampleWarmup are zero for monolithic jobs and omitted
	// from the canonical encoding, so every pre-sampling job key (and its
	// cached bytes) is unchanged. Worker parallelism is a wall-clock knob,
	// not part of the result, so it is deliberately not in the identity.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	SampleWarmup   uint64 `json:"sample_warmup,omitempty"`
	// SamplePeriod is > 1 for sparse measurement and omitted otherwise
	// (full coverage is the canonical form of period 0 and 1 alike).
	SamplePeriod uint64 `json:"sample_period,omitempty"`
}

// Key returns the content address of the job: the hex SHA-256 of the
// canonical JSON encoding of the spec.
func (j JobSpec) Key() string {
	data, err := json.Marshal(j)
	if err != nil {
		// JobSpec is a flat struct of marshalable fields; this cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// CompileOptions materializes the spec's compiler configuration.
func (j JobSpec) CompileOptions() compile.Options {
	opts := compile.DefaultOptions()
	opts.Schedule = j.Schedule
	opts.InsertRestarts = j.InsertRestarts
	opts.Unroll = j.Unroll
	return opts
}

// RunRequest returns the request whose normalization reproduces this spec
// exactly: every field explicit, no defaults left to fill. The fabric
// coordinator serializes this to dispatch a job to a worker, and the
// canonical-form property guarantees the worker computes the same job key.
func (j JobSpec) RunRequest() RunRequest {
	schedule, restarts, unroll := j.Schedule, j.InsertRestarts, j.Unroll
	req := RunRequest{
		Workload: j.Workload,
		Model:    j.Model,
		Hier:     j.Hier,
		Scale:    j.Scale,
		Compile: &CompileOverrides{
			Schedule:       &schedule,
			InsertRestarts: &restarts,
			Unroll:         &unroll,
		},
		MaxInsts: j.MaxInsts,
	}
	if j.SampleInterval > 0 {
		req.Sample = &SampleOverrides{Interval: j.SampleInterval, Warmup: j.SampleWarmup, Period: j.SamplePeriod}
	}
	return req
}

// normalize validates a RunRequest against the registries and returns its
// canonical JobSpec.
func normalize(req *RunRequest) (JobSpec, error) {
	def := compile.DefaultOptions()
	spec := JobSpec{
		Workload:       req.Workload,
		Model:          req.Model,
		Hier:           req.Hier,
		Scale:          req.Scale,
		Schedule:       def.Schedule,
		InsertRestarts: def.InsertRestarts,
		Unroll:         def.Unroll,
		MaxInsts:       req.MaxInsts,
	}
	if spec.Hier == "" {
		spec.Hier = "base"
	}
	if spec.Scale == 0 {
		spec.Scale = 1
	}
	if c := req.Compile; c != nil {
		if c.Schedule != nil {
			spec.Schedule = *c.Schedule
		}
		if c.InsertRestarts != nil {
			spec.InsertRestarts = *c.InsertRestarts
		}
		if c.Unroll != nil {
			spec.Unroll = *c.Unroll
		}
	}

	if spec.Workload == "" {
		return spec, apiErrorf(http.StatusBadRequest, CodeMissingWorkload,
			"see /v1/workloads", "missing workload")
	}
	if _, ok := workload.ByName(spec.Workload); !ok {
		return spec, apiErrorf(http.StatusBadRequest, CodeUnknownWorkload,
			"see /v1/workloads", "unknown workload %q", spec.Workload)
	}
	if spec.Model == "" {
		return spec, apiErrorf(http.StatusBadRequest, CodeMissingModel,
			"see /v1/models", "missing model")
	}
	if _, ok := sim.Lookup(spec.Model); !ok {
		return spec, apiErrorf(http.StatusBadRequest, CodeUnknownModel,
			"see /v1/models", "unknown model %q (see /v1/models)", spec.Model)
	}
	if _, ok := mem.ConfigByName(spec.Hier); !ok {
		return spec, apiErrorf(http.StatusBadRequest, CodeUnknownHier,
			fmt.Sprintf("have %v", mem.ConfigNames()),
			"unknown hierarchy %q (have %v)", spec.Hier, mem.ConfigNames())
	}
	if spec.Scale < 1 {
		return spec, apiErrorf(http.StatusBadRequest, CodeBadScale, "scale must be >= 1",
			"scale %d < 1", spec.Scale)
	}
	if spec.Unroll < 0 {
		return spec, apiErrorf(http.StatusBadRequest, CodeBadUnroll, "unroll must be >= 0",
			"unroll %d < 0", spec.Unroll)
	}
	if sa := req.Sample; sa != nil {
		if sa.Interval < MinSampleInterval {
			return spec, apiErrorf(http.StatusBadRequest, CodeBadSample,
				fmt.Sprintf("sample.interval must be >= %d", MinSampleInterval),
				"sample interval %d < %d", sa.Interval, MinSampleInterval)
		}
		spec.SampleInterval = sa.Interval
		spec.SampleWarmup = sa.Warmup
		if spec.SampleWarmup == 0 {
			// Canonical fill: an explicit interval/4 and the default are the
			// same job and must share a cache key.
			spec.SampleWarmup = sa.Interval / 4
		}
		if sa.Period > 1 {
			// Period 0 and 1 both mean full coverage; only sparse periods
			// enter the identity, so their canonical form stays the zero
			// value and pre-period cache keys are unchanged.
			spec.SamplePeriod = sa.Period
		}
	}
	if req.TimeoutMS < 0 {
		return spec, apiErrorf(http.StatusBadRequest, CodeBadTimeout, "timeout_ms must be >= 0",
			"timeout_ms %d < 0", req.TimeoutMS)
	}
	return spec, nil
}

// RunResponse is the body of POST /v1/run — and exactly the bytes the result
// cache stores, so a cache hit replays a byte-identical body.
type RunResponse struct {
	SchemaVersion int       `json:"schema_version"`
	Job           JobSpec   `json:"job"`
	Stats         sim.Stats `json:"stats"`
}

// SweepRequest is the body of POST /v1/sweep: the cross product of the three
// axes. Empty axes default to everything the registries enumerate.
type SweepRequest struct {
	Workloads []string          `json:"workloads,omitempty"`
	Models    []string          `json:"models,omitempty"`
	Hiers     []string          `json:"hiers,omitempty"`
	Scale     int               `json:"scale,omitempty"`
	Compile   *CompileOverrides `json:"compile,omitempty"`
	MaxInsts  uint64            `json:"max_insts,omitempty"`
	// Sample applies interval sampling to every cell of the grid.
	Sample *SampleOverrides `json:"sample,omitempty"`
	// TimeoutMS bounds the whole sweep; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Sweep job statuses.
const (
	JobDone   = "done"   // executed by this request
	JobCached = "cached" // served from the result cache
	JobFailed = "failed" // error reported in Error
)

// SweepJob is one cell of a sweep result.
type SweepJob struct {
	Job    JobSpec    `json:"job"`
	Status string     `json:"status"`
	Error  string     `json:"error,omitempty"`
	Stats  *sim.Stats `json:"stats,omitempty"`
}

// SweepSummary accounts for every job of a sweep: Total = Done+Cached+Failed.
type SweepSummary struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Cached int `json:"cached"`
	Failed int `json:"failed"`
}

// SweepResponse is the body of POST /v1/sweep.
type SweepResponse struct {
	SchemaVersion int          `json:"schema_version"`
	Jobs          []SweepJob   `json:"jobs"`
	Summary       SweepSummary `json:"summary"`
}

// Stream record types for /v1/sweep?stream=true.
const (
	StreamRecordJob     = "job"     // one completed sweep cell
	StreamRecordSummary = "summary" // the terminating accounting record
)

// SweepStreamRecord is one newline-delimited JSON record of a streaming
// sweep: a "job" record per cell, in completion order, terminated by
// exactly one "summary" record. The buffered (non-stream) response remains
// index-ordered and byte-identical to a single-node run.
type SweepStreamRecord struct {
	SchemaVersion int    `json:"schema_version"`
	Type          string `json:"type"`
	// Index is the cell's position in the request grid (job records only);
	// a streaming client can reassemble request order from it.
	Index     *int          `json:"index,omitempty"`
	*SweepJob               // job, status, error, stats — flattened into the record
	Summary   *SweepSummary `json:"summary,omitempty"`
	// Workers reports per-worker job dispositions for this sweep: the
	// fabric workers in coordinator mode, a single "local" entry otherwise.
	Workers map[string]WorkerDisposition `json:"workers,omitempty"`
}

// WorkerDisposition accounts for one worker's share of dispatched jobs.
// Dispatched = Completed + RetriedSuccess + Failed once a sweep settles
// (attributed to the worker that ultimately resolved the job). Departed
// fleet members keep their rows with Member false so deltas stay
// consistent across churn.
type WorkerDisposition struct {
	Healthy bool `json:"healthy"`
	// Member reports whether the worker is currently in the fleet.
	// Standalone-mode "local" dispositions are always members.
	Member         bool   `json:"member"`
	Dispatched     uint64 `json:"dispatched"`
	Completed      uint64 `json:"completed"`
	Retried        uint64 `json:"retried"`
	RetriedSuccess uint64 `json:"retried_success"`
	Failed         uint64 `json:"failed"`
	// Stolen counts jobs this worker's coordinator-side runners pulled
	// from another worker's backlog (work stealing).
	Stolen uint64 `json:"stolen"`
}

// JoinRequest is the body of POST /v1/fabric/join and /v1/fabric/leave:
// the worker's externally reachable base URL.
type JoinRequest struct {
	URL string `json:"url"`
}

// JoinResponse is the body of POST /v1/fabric/join: the lease the worker
// must renew within (renewal is another join) and the member list after
// the join.
type JoinResponse struct {
	SchemaVersion int      `json:"schema_version"`
	TTLMS         int64    `json:"ttl_ms"`
	Members       []string `json:"members"`
}

// ModelInfo describes one timing model in GET /v1/models.
type ModelInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// HierarchyInfo describes one named cache hierarchy in GET /v1/models.
type HierarchyInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// ModelsResponse is the body of GET /v1/models, enumerated from the sim
// registry. With ?compat=names the endpoint serves ModelNamesResponse
// (the v1 shape) instead.
type ModelsResponse struct {
	SchemaVersion int             `json:"schema_version"`
	Models        []ModelInfo     `json:"models"`
	Hierarchies   []HierarchyInfo `json:"hierarchies"`
}

// ModelNamesResponse is the ?compat=names body of GET /v1/models: bare
// name arrays, as served before schema v2.
type ModelNamesResponse struct {
	SchemaVersion int      `json:"schema_version"`
	Models        []string `json:"models"`
	Hierarchies   []string `json:"hierarchies"`
}

// WorkloadInfo describes one kernel in GET /v1/workloads.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
}

// WorkloadsResponse is the body of GET /v1/workloads. With ?compat=names
// the endpoint serves WorkloadNamesResponse instead.
type WorkloadsResponse struct {
	SchemaVersion int            `json:"schema_version"`
	Workloads     []WorkloadInfo `json:"workloads"`
}

// WorkloadNamesResponse is the ?compat=names body of GET /v1/workloads:
// a bare name array.
type WorkloadNamesResponse struct {
	SchemaVersion int      `json:"schema_version"`
	Workloads     []string `json:"workloads"`
}

// WorkerHealthResponse is the body of GET /v1/worker/health: the liveness
// surface a fabric coordinator probes on its workers.
type WorkerHealthResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Status        string `json:"status"` // "ok" while serving
	Role          string `json:"role"`   // "standalone", "worker", or "coordinator"
	// Workers is the worker-pool size (max concurrently executing jobs).
	Workers       int     `json:"workers"`
	InFlight      int64   `json:"in_flight"`
	JobsExecuted  uint64  `json:"jobs_executed"`
	CacheEntries  int     `json:"cache_entries"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// StatsResponse is the body of GET /v1/stats: server-level metrics.
type StatsResponse struct {
	SchemaVersion int `json:"schema_version"`
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// JobsExecuted counts simulations actually run (cache misses).
	JobsExecuted uint64 `json:"jobs_executed"`
	// JobsFailed counts executed simulations that returned an error.
	JobsFailed uint64 `json:"jobs_failed"`
	// CacheHits, CacheMisses, and CacheCoalesced partition every request
	// that reached the cache layer: served from cache, executed, or joined
	// an in-flight execution of the same job. They sum to the request
	// total.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
	// CacheEvictions counts entries evicted by the byte-budget clock.
	CacheEvictions uint64 `json:"cache_evictions"`
	// CacheEntries is the current number of cached results.
	CacheEntries int `json:"cache_entries"`
	// CacheBytes is the cache footprint charged against MaxCacheBytes.
	CacheBytes int64 `json:"cache_bytes"`
	// InFlight is the number of simulations executing right now.
	InFlight int64 `json:"in_flight"`
	// ProgramsBuilt counts workload compilations this server performed
	// itself; ProgramsFetched counts program bundles it fetched pre-built
	// from a fabric coordinator instead. On a well-memoized fleet the
	// workers' built count stays 0 for dispatched work.
	ProgramsBuilt   uint64 `json:"programs_built"`
	ProgramsFetched uint64 `json:"programs_fetched"`
	// LatencyP50MS/LatencyP99MS summarize executed-job wall time over a
	// sliding window of recent jobs.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ErrorDetail is the uniform error envelope payload: a stable
// machine-readable code, a human-readable message (which keeps the
// quoted-name convention, e.g. `unknown model "oooo"`), and an optional
// hint pointing at how to fix the request.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Hint    string `json:"hint,omitempty"`
}

// ErrorResponse is the body of every non-2xx response from a /v1/*
// endpoint: {"error": {"code": ..., "message": ..., "hint": ...}}.
type ErrorResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Error         ErrorDetail `json:"error"`
}
