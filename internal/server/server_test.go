package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return buf.Bytes()
}

func getStats(t *testing.T, base string) StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRunCacheDeterminism: a repeated identical request is served from the
// cache with byte-identical JSON, and the hit counter moves.
func TestRunCacheDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := RunRequest{Workload: "crafty", Model: "inorder"}

	resp1 := postJSON(t, ts.URL+"/v1/run", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d", resp1.StatusCode)
	}
	if got := resp1.Header.Get("X-Mpsimd-Cache"); got != "miss" {
		t.Errorf("first run cache header = %q, want miss", got)
	}
	body1 := readBody(t, resp1)

	before := getStats(t, ts.URL)

	resp2 := postJSON(t, ts.URL+"/v1/run", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Mpsimd-Cache"); got != "hit" {
		t.Errorf("second run cache header = %q, want hit", got)
	}
	body2 := readBody(t, resp2)

	if !bytes.Equal(body1, body2) {
		t.Errorf("cache replay not byte-identical:\n first: %s\nsecond: %s", body1, body2)
	}

	after := getStats(t, ts.URL)
	if after.CacheHits <= before.CacheHits {
		t.Errorf("cache hits %d -> %d, want an increment", before.CacheHits, after.CacheHits)
	}
	if after.JobsExecuted != 1 {
		t.Errorf("jobs_executed = %d, want 1", after.JobsExecuted)
	}
	if after.CacheEntries != 1 {
		t.Errorf("cache_entries = %d, want 1", after.CacheEntries)
	}

	var rr RunResponse
	if err := json.Unmarshal(body1, &rr); err != nil {
		t.Fatalf("decode run response: %v", err)
	}
	if rr.SchemaVersion != APISchemaVersion {
		t.Errorf("schema_version = %d", rr.SchemaVersion)
	}
	if rr.Job.Workload != "crafty" || rr.Job.Model != "inorder" || rr.Job.Hier != "base" || rr.Job.Scale != 1 {
		t.Errorf("normalized job = %+v", rr.Job)
	}
	if rr.Stats.Cycles == 0 || rr.Stats.Retired == 0 {
		t.Errorf("empty stats: %+v", rr.Stats)
	}
}

// TestRunDeadlineMidRun: a 1 ms deadline on a long job makes every model
// return promptly with 504, not run to completion.
func TestRunDeadlineMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, model := range []string{"inorder", "multipass", "runahead", "ooo"} {
		start := time.Now()
		resp := postJSON(t, ts.URL+"/v1/run", RunRequest{
			Workload: "mcf", Model: model, Scale: 8, TimeoutMS: 1,
		})
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("%s: status %d, body %s", model, resp.StatusCode, body)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("%s: deadline response took %v", model, elapsed)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Errorf("%s: error body not JSON: %v", model, err)
		} else if er.Error.Code != CodeDeadlineExceeded {
			t.Errorf("%s: error code %q, want %q", model, er.Error.Code, CodeDeadlineExceeded)
		} else if !strings.Contains(er.Error.Message, "deadline") {
			t.Errorf("%s: error = %q, want deadline mention", model, er.Error.Message)
		}
	}
}

// TestRunValidation: malformed and unresolvable requests are rejected up
// front with 400, and the wrong method with 405.
func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  RunRequest
		want string
	}{
		{"unknown workload", RunRequest{Workload: "nope", Model: "inorder"}, "unknown workload"},
		{"unknown model", RunRequest{Workload: "mcf", Model: "nope"}, "unknown model"},
		{"unknown hier", RunRequest{Workload: "mcf", Model: "inorder", Hier: "nope"}, "unknown hierarchy"},
		{"missing workload", RunRequest{Model: "inorder"}, "missing workload"},
		{"negative scale", RunRequest{Workload: "mcf", Model: "inorder", Scale: -1}, "scale"},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/run", tc.req)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", tc.name, resp.StatusCode, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error.Message, tc.want) {
			t.Errorf("%s: error body %s, want mention of %q", tc.name, body, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentMixedRuns: 64 concurrent /v1/run requests over a small mix of
// jobs all complete cleanly, and every response for a given job is
// byte-identical regardless of whether it was executed, coalesced, or cached.
func TestConcurrentMixedRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	specs := []RunRequest{
		{Workload: "crafty", Model: "inorder"},
		{Workload: "crafty", Model: "multipass"},
		{Workload: "gzip", Model: "inorder"},
		{Workload: "gzip", Model: "multipass"},
	}
	const n = 64

	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(specs[i%len(specs)])
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			_, err = buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d (%+v): %v", i, specs[i%len(specs)], err)
		}
	}
	// All responses for the same job must be identical bytes.
	for i := len(specs); i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[i%len(specs)]) {
			t.Errorf("request %d body diverges from request %d", i, i%len(specs))
		}
	}

	st := getStats(t, ts.URL)
	if st.JobsExecuted > uint64(n) {
		t.Errorf("jobs_executed = %d for %d distinct jobs", st.JobsExecuted, len(specs))
	}
	if st.CacheEntries != len(specs) {
		t.Errorf("cache_entries = %d, want %d", st.CacheEntries, len(specs))
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight = %d after drain", st.InFlight)
	}
	if st.LatencyP50MS <= 0 || st.LatencyP99MS < st.LatencyP50MS {
		t.Errorf("latency percentiles p50=%v p99=%v", st.LatencyP50MS, st.LatencyP99MS)
	}
}

// TestSweepFigure7Grid: a model x hierarchy sweep in the shape of the paper's
// Figure 7 completes with every job accounted for as done, cached, or failed.
func TestSweepFigure7Grid(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	// Pre-warm one cell so the sweep exercises the cached path too.
	warm := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "inorder"})
	readBody(t, warm)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d", warm.StatusCode)
	}

	models := []string{"inorder", "multipass", "runahead", "ooo"}
	hiers := []string{"base", "config1", "config2"}
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    models,
		Hiers:     hiers,
	})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d, body %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	wantJobs := len(models) * len(hiers)
	if sr.Summary.Total != wantJobs || len(sr.Jobs) != wantJobs {
		t.Fatalf("summary total %d, jobs %d, want %d", sr.Summary.Total, len(sr.Jobs), wantJobs)
	}
	if got := sr.Summary.Done + sr.Summary.Cached + sr.Summary.Failed; got != sr.Summary.Total {
		t.Errorf("done %d + cached %d + failed %d = %d, want total %d",
			sr.Summary.Done, sr.Summary.Cached, sr.Summary.Failed, got, sr.Summary.Total)
	}
	if sr.Summary.Failed != 0 {
		t.Errorf("failed = %d, want 0", sr.Summary.Failed)
	}
	if sr.Summary.Cached == 0 {
		t.Error("cached = 0, want the pre-warmed cell to be served from cache")
	}

	seen := map[string]bool{}
	for _, job := range sr.Jobs {
		key := job.Job.Model + "/" + job.Job.Hier
		seen[key] = true
		if job.Status != JobDone && job.Status != JobCached {
			t.Errorf("%s: status %q error %q", key, job.Status, job.Error)
			continue
		}
		if job.Stats == nil || job.Stats.Cycles == 0 {
			t.Errorf("%s: missing stats", key)
		}
	}
	for _, m := range models {
		for _, h := range hiers {
			if !seen[m+"/"+h] {
				t.Errorf("grid cell %s/%s missing from sweep", m, h)
			}
		}
	}
}

// TestSweepPartialFailure: a sweep whose jobs hit the dynamic instruction
// limit reports those cells failed while still accounting for every job.
func TestSweepPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base"},
		MaxInsts:  100,
	})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d, body %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Summary.Total != 2 || sr.Summary.Failed != 2 {
		t.Errorf("summary = %+v, want 2 jobs both failed", sr.Summary)
	}
	for _, job := range sr.Jobs {
		if job.Status != JobFailed || job.Error == "" {
			t.Errorf("%s: status %q error %q, want failed with an error", job.Job.Model, job.Status, job.Error)
		}
	}
}

// TestSweepValidation: an invalid axis value fails the whole sweep before any
// simulation runs, and oversized grids are rejected.
func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSweepJobs: 2})

	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", "bogus"},
		Hiers:     []string{"base"},
	})
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid model axis: status %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", "multipass", "ooo"},
		Hiers:     []string{"base"},
	})
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("grid over MaxSweepJobs: status %d, want 400", resp.StatusCode)
	}
	if st := getStats(t, ts.URL); st.JobsExecuted != 0 {
		t.Errorf("jobs_executed = %d after rejected sweeps, want 0", st.JobsExecuted)
	}
}

// TestModelsAndWorkloads: the enumeration endpoints reflect the registries
// and, as of schema v2, describe every entry.
func TestModelsAndWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(HeaderAPIVersion); got != fmt.Sprint(APISchemaVersion) {
		t.Errorf("%s header = %q, want %d", HeaderAPIVersion, got, APISchemaVersion)
	}
	var mr ModelsResponse
	if err := json.Unmarshal(readBody(t, resp), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.SchemaVersion != APISchemaVersion {
		t.Errorf("schema_version = %d, want %d", mr.SchemaVersion, APISchemaVersion)
	}
	have := map[string]ModelInfo{}
	for _, m := range mr.Models {
		have[m.Name] = m
	}
	for _, want := range []string{"inorder", "multipass", "multipass-noregroup", "multipass-norestart", "runahead", "ooo", "ooo-realistic"} {
		info, ok := have[want]
		if !ok {
			t.Errorf("/v1/models missing %q (got %v)", want, mr.Models)
			continue
		}
		if info.Description == "" {
			t.Errorf("model %s: empty description", want)
		}
	}
	wantHiers := []string{"base", "config1", "config2"}
	if len(mr.Hierarchies) != len(wantHiers) {
		t.Errorf("hierarchies = %v, want %v", mr.Hierarchies, wantHiers)
	}
	for i, h := range mr.Hierarchies {
		if h.Name != wantHiers[i] {
			t.Errorf("hierarchy[%d] = %q, want %q", i, h.Name, wantHiers[i])
		}
		if h.Description == "" {
			t.Errorf("hierarchy %s: empty description", h.Name)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var wr WorkloadsResponse
	if err := json.Unmarshal(readBody(t, resp), &wr); err != nil {
		t.Fatal(err)
	}
	wl := map[string]WorkloadInfo{}
	for _, w := range wr.Workloads {
		wl[w.Name] = w
	}
	for _, want := range []string{"mcf", "gzip", "crafty"} {
		info, ok := wl[want]
		if !ok {
			t.Errorf("/v1/workloads missing %q", want)
			continue
		}
		if info.Class == "" || info.Description == "" {
			t.Errorf("%s: empty class/description: %+v", want, info)
		}
	}
}

// TestModelsCompatNames pins the ?compat=names escape hatch: the v1 bare
// name-array shapes stay available for clients that have not moved to the
// v2 object shapes yet.
func TestModelsCompatNames(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/models?compat=names")
	if err != nil {
		t.Fatal(err)
	}
	var mn ModelNamesResponse
	if err := json.Unmarshal(readBody(t, resp), &mn); err != nil {
		t.Fatal(err)
	}
	haveModel := map[string]bool{}
	for _, m := range mn.Models {
		haveModel[m] = true
	}
	if !haveModel["inorder"] || !haveModel["multipass"] {
		t.Errorf("compat models = %v, want bare name strings", mn.Models)
	}
	wantHiers := []string{"base", "config1", "config2"}
	if fmt.Sprint(mn.Hierarchies) != fmt.Sprint(wantHiers) {
		t.Errorf("compat hierarchies = %v, want %v", mn.Hierarchies, wantHiers)
	}

	resp, err = http.Get(ts.URL + "/v1/workloads?compat=names")
	if err != nil {
		t.Fatal(err)
	}
	var wn WorkloadNamesResponse
	if err := json.Unmarshal(readBody(t, resp), &wn); err != nil {
		t.Fatal(err)
	}
	haveWL := map[string]bool{}
	for _, w := range wn.Workloads {
		haveWL[w] = true
	}
	for _, want := range []string{"mcf", "gzip", "crafty"} {
		if !haveWL[want] {
			t.Errorf("compat workloads missing %q (got %v)", want, wn.Workloads)
		}
	}
}

// TestWorkerHealth pins the fabric liveness surface: role, status, and the
// counters a coordinator uses to judge a worker.
func TestWorkerHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, Role: "worker"})

	resp, err := http.Get(ts.URL + "/v1/worker/health")
	if err != nil {
		t.Fatal(err)
	}
	var wh WorkerHealthResponse
	if err := json.Unmarshal(readBody(t, resp), &wh); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if wh.Status != "ok" || wh.Role != "worker" || wh.Workers != 3 {
		t.Errorf("health = %+v", wh)
	}
	if wh.SchemaVersion != APISchemaVersion {
		t.Errorf("schema_version = %d", wh.SchemaVersion)
	}
}

// TestJobSpecKeyStability: the content address ignores the non-identity
// timeout field and distinguishes every identity field.
func TestJobSpecKeyStability(t *testing.T) {
	base := RunRequest{Workload: "mcf", Model: "multipass"}
	s1, err := normalize(&base)
	if err != nil {
		t.Fatal(err)
	}
	withTimeout := base
	withTimeout.TimeoutMS = 5000
	s2, err := normalize(&withTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Key() != s2.Key() {
		t.Error("timeout_ms changed the job key")
	}

	explicit := RunRequest{Workload: "mcf", Model: "multipass", Hier: "base", Scale: 1}
	s3, err := normalize(&explicit)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Key() != s3.Key() {
		t.Error("explicit defaults produce a different key than omitted defaults")
	}

	for name, mutate := range map[string]func(*RunRequest){
		"workload": func(r *RunRequest) { r.Workload = "gzip" },
		"model":    func(r *RunRequest) { r.Model = "inorder" },
		"hier":     func(r *RunRequest) { r.Hier = "config1" },
		"scale":    func(r *RunRequest) { r.Scale = 2 },
		"maxinsts": func(r *RunRequest) { r.MaxInsts = 10 },
	} {
		req := base
		mutate(&req)
		s, err := normalize(&req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Key() == s1.Key() {
			t.Errorf("changing %s did not change the job key", name)
		}
	}
}
