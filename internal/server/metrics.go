package server

import (
	"sort"
	"strconv"
	"time"

	"multipass/internal/obs"
)

// latencyBuckets are the fixed upper bounds (seconds) of the job-duration
// histogram: sub-millisecond cache-adjacent work through multi-minute
// simulations.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// serverMetrics is the /metrics surface: counters the request path bumps
// directly, plus scrape-time readers over the server's existing atomics so
// /v1/stats and /metrics can never disagree.
type serverMetrics struct {
	reg *obs.Registry

	// jobs counts executed simulations by identity and outcome.
	jobs *obs.CounterVec // labels: model, workload, status (ok|error)
	// httpRequests counts requests by (bounded) path and status code.
	httpRequests *obs.CounterVec // labels: path, code
	// jobDuration is executed-job wall time in seconds; /v1/stats derives
	// its p50/p99 from this histogram.
	jobDuration *obs.Histogram
}

// newServerMetrics registers every family against s. Called once from New,
// after the cache and worker pool exist.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg}

	m.jobs = reg.CounterVec("mpsimd_jobs_total",
		"Simulations executed, by model, workload, and outcome.",
		"model", "workload", "status")
	m.jobDuration = reg.Histogram("mpsimd_job_duration_seconds",
		"Wall time of executed simulation jobs.", latencyBuckets)
	m.httpRequests = reg.CounterVec("mpsimd_http_requests_total",
		"HTTP requests served, by path and status code.",
		"path", "code")

	reg.CounterFunc("mpsimd_cache_hits_total",
		"Requests served from the result cache.",
		func() uint64 { return s.cache.hits.Load() })
	reg.CounterFunc("mpsimd_cache_misses_total",
		"Requests that executed a simulation.",
		func() uint64 { return s.cache.misses.Load() })
	reg.CounterFunc("mpsimd_cache_coalesced_total",
		"Requests that joined an in-flight execution of the same job.",
		func() uint64 { return s.cache.coalesced.Load() })
	reg.CounterFunc("mpsimd_cache_evictions_total",
		"Result-cache entries evicted by the byte-budget clock.",
		func() uint64 { return s.cache.evictions.Load() })
	reg.GaugeFunc("mpsimd_cache_entries",
		"Current result-cache entries.",
		func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("mpsimd_cache_bytes",
		"Current result-cache footprint charged against MaxCacheBytes.",
		func() float64 { return float64(s.cache.bytes()) })

	reg.CounterFunc("mpsimd_programs_built_total",
		"Workload programs this server compiled itself.",
		func() uint64 { return s.programsBuilt.Load() })
	reg.CounterFunc("mpsimd_programs_fetched_total",
		"Program bundles fetched pre-built from a fabric coordinator.",
		func() uint64 { return s.programsFetched.Load() })
	reg.CounterFunc("mpsimd_cache_disk_restores_total",
		"Result-cache entries restored from the persist directory.",
		func() uint64 { return s.cache.diskRestores.Load() })

	reg.GaugeFunc("mpsimd_workers",
		"Worker-pool size (max concurrently executing simulations).",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("mpsimd_workers_busy",
		"Worker-pool slots currently held by executing simulations.",
		func() float64 { return float64(len(s.sem)) })
	reg.GaugeFunc("mpsimd_in_flight_jobs",
		"Simulations executing right now.",
		func() float64 { return float64(s.inFlight.Load()) })
	reg.GaugeFunc("mpsimd_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })

	if s.cfg.Dispatcher != nil {
		// Coordinator mode: export fabric accounting and federate the
		// workers' own mpsimd_* families (relabeled mpsimd_worker_* with a
		// `worker` label) into this exposition.
		reg.CollectorFunc(func() []obs.TextFamily {
			fams := fabricFamilies(s.cfg.Dispatcher.Dispositions())
			if fr, ok := s.cfg.Dispatcher.(FleetReporter); ok {
				fams = append(fams, fr.FleetFamilies()...)
			}
			return append(fams, s.cfg.Dispatcher.WorkerFamilies()...)
		})
	}

	reg.EnableRuntimeMetrics()
	return m
}

// fabricFamilies renders the coordinator's per-worker dispatch accounting
// as metric families. The invariant dashboards alert on: once a sweep
// settles with no failures, dispatched == completed + retried_success.
func fabricFamilies(disp map[string]WorkerDisposition) []obs.TextFamily {
	urls := make([]string, 0, len(disp))
	for url := range disp {
		urls = append(urls, url)
	}
	sort.Strings(urls)

	counter := func(name, help string, value func(WorkerDisposition) uint64) obs.TextFamily {
		f := obs.TextFamily{Name: name, Help: help, Kind: "counter"}
		for _, url := range urls {
			f.Samples = append(f.Samples, obs.TextSample{
				Labels: obs.AddLabel("", "worker", url),
				Value:  strconv.FormatUint(value(disp[url]), 10),
			})
		}
		return f
	}
	healthy := obs.TextFamily{Name: "mpsimd_fabric_worker_healthy",
		Help: "Whether the fabric considers the worker healthy (1) or dead (0).", Kind: "gauge"}
	for _, url := range urls {
		v := "0"
		if disp[url].Healthy {
			v = "1"
		}
		healthy.Samples = append(healthy.Samples, obs.TextSample{
			Labels: obs.AddLabel("", "worker", url), Value: v,
		})
	}
	return []obs.TextFamily{
		counter("mpsimd_fabric_dispatched_total",
			"Jobs handed to the fabric, attributed to their primary worker.",
			func(d WorkerDisposition) uint64 { return d.Dispatched }),
		counter("mpsimd_fabric_completed_total",
			"Jobs resolved on their primary worker (success or a deterministic job error).",
			func(d WorkerDisposition) uint64 { return d.Completed }),
		counter("mpsimd_fabric_retried_total",
			"Retry attempts sent to this worker after another worker failed.",
			func(d WorkerDisposition) uint64 { return d.Retried }),
		counter("mpsimd_fabric_retried_success_total",
			"Jobs rescued by this worker after their primary failed.",
			func(d WorkerDisposition) uint64 { return d.RetriedSuccess }),
		counter("mpsimd_fabric_failed_total",
			"Jobs that exhausted every retry, attributed to their primary worker.",
			func(d WorkerDisposition) uint64 { return d.Failed }),
		counter("mpsimd_fabric_stolen_total",
			"Jobs this worker stole from another worker's backlog.",
			func(d WorkerDisposition) uint64 { return d.Stolen }),
		healthy,
	}
}
