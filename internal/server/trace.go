package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"multipass/internal/obs"
)

// Observability headers.
const (
	// headerRequestID carries the request ID: honored (after sanitizing)
	// when the client sends one, generated otherwise, echoed on every
	// response.
	headerRequestID = "X-Mpsimd-Request-Id"
	// headerTrace summarizes the request's phase spans.
	headerTrace = "X-Mpsimd-Trace"
	// headerCache reports the cache disposition of /v1/run.
	headerCache = "X-Mpsimd-Cache"
)

// knownPaths bounds the path label of mpsimd_http_requests_total; anything
// else (scans, typos) collapses into "other" so cardinality stays fixed.
var knownPaths = map[string]bool{
	"/v1/run": true, "/v1/sweep": true, "/v1/models": true,
	"/v1/workloads": true, "/v1/stats": true, "/v1/worker/health": true,
	"/metrics": true,
}

// statusRecorder captures the response code for logs and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// withObs wraps the routed handler with the per-request observability
// envelope: request-ID assignment, a Trace in the context, the request log,
// and the HTTP request counter.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.SanitizeRequestID(r.Header.Get(headerRequestID))
		tr := obs.NewTrace(id) // generates an ID when sanitizing emptied it
		w.Header().Set(headerRequestID, tr.ID)
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			w.Header().Set(HeaderAPIVersion, strconv.Itoa(APISchemaVersion))
		}

		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(obs.WithTrace(r.Context(), tr)))
		if rec.code == 0 {
			rec.code = http.StatusOK
		}

		path := r.URL.Path
		if !knownPaths[path] {
			path = "other"
		}
		s.metrics.httpRequests.With(path, httpCodeLabel(rec.code)).Inc()

		// Scrapes and registry reads are high-frequency and uninteresting;
		// keep them out of Info logs.
		level := slog.LevelInfo
		if r.Method == http.MethodGet {
			level = slog.LevelDebug
		}
		s.log.Log(r.Context(), level, "http request",
			"request_id", tr.ID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.code,
			"dur_ms", float64(tr.Elapsed())/float64(time.Millisecond),
		)
	})
}

// httpCodeLabel renders a status code as a metric label value.
func httpCodeLabel(code int) string {
	return strconv.Itoa(code)
}

// debugRequested reports whether the request asked for the debug trace
// section (?debug=true).
func debugRequested(r *http.Request) bool {
	switch r.URL.Query().Get("debug") {
	case "1", "true":
		return true
	}
	return false
}

// withTraceSection splices a "trace" member into a marshaled JSON object
// without re-encoding it, so the stats bytes stay exactly the cached ones.
func withTraceSection(data []byte, tr *obs.Trace) []byte {
	tj, err := json.Marshal(tr.JSON())
	if err != nil {
		return data
	}
	i := bytes.LastIndexByte(data, '}')
	if i < 0 {
		return data
	}
	out := make([]byte, 0, len(data)+len(tj)+16)
	out = append(out, data[:i]...)
	out = append(out, `,"trace":`...)
	out = append(out, tj...)
	out = append(out, data[i:]...)
	return out
}
