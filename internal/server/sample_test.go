package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSampleJobIdentity pins the cache-compatibility contract of the sample
// fields: monolithic specs encode without them (so every pre-sampling job key
// and cached body is unchanged), sampling is part of the identity, and the
// defaulted warm-up normalizes to the same key as its explicit value.
func TestSampleJobIdentity(t *testing.T) {
	mono, err := normalize(&RunRequest{Workload: "mcf", Model: "inorder"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(mono)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "sample") {
		t.Errorf("monolithic JobSpec encodes sample fields, breaking pre-sampling cache keys: %s", data)
	}

	sampled, err := normalize(&RunRequest{
		Workload: "mcf", Model: "inorder",
		Sample: &SampleOverrides{Interval: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Key() == mono.Key() {
		t.Error("sampling did not change the job key")
	}
	if sampled.SampleWarmup != 25000 {
		t.Errorf("default warmup = %d, want interval/4 = 25000", sampled.SampleWarmup)
	}
	explicit, err := normalize(&RunRequest{
		Workload: "mcf", Model: "inorder",
		Sample: &SampleOverrides{Interval: 100000, Warmup: 25000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Key() != sampled.Key() {
		t.Error("explicit interval/4 warmup and the default produce different keys")
	}

	// Sparse period: part of the identity when > 1, canonicalized away when
	// it means full coverage (0 and 1 alike).
	period1, err := normalize(&RunRequest{
		Workload: "mcf", Model: "inorder",
		Sample: &SampleOverrides{Interval: 100000, Period: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if period1.Key() != sampled.Key() {
		t.Error("period 1 and full coverage produce different keys")
	}
	sparse, err := normalize(&RunRequest{
		Workload: "mcf", Model: "inorder",
		Sample: &SampleOverrides{Interval: 100000, Period: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Key() == sampled.Key() {
		t.Error("sparse period did not change the job key")
	}
	if sparse.SamplePeriod != 8 {
		t.Errorf("sparse period = %d, want 8", sparse.SamplePeriod)
	}

	// The dispatch round trip: a worker normalizing the coordinator's
	// re-serialized request must land on the same spec.
	req := sampled.RunRequest()
	back, err := normalize(&req)
	if err != nil {
		t.Fatal(err)
	}
	if back != sampled {
		t.Errorf("RunRequest round trip changed the spec: %+v vs %+v", back, sampled)
	}
}

// TestRunBadSampleEnvelope pins the error envelope for an interval below the
// server floor.
func TestRunBadSampleEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Workload: "mcf", Model: "inorder",
		Sample: &SampleOverrides{Interval: 16},
	})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeBadSample {
		t.Errorf("code %q, want %q", er.Error.Code, CodeBadSample)
	}
	if !strings.Contains(er.Error.Hint, "1024") {
		t.Errorf("hint %q should state the floor", er.Error.Hint)
	}
	if st := getStats(t, ts.URL); st.JobsExecuted != 0 {
		t.Errorf("jobs_executed = %d after rejected run, want 0", st.JobsExecuted)
	}
}

// TestSweepBadScaleEnvelope pins the envelope for an invalid scale on the
// sweep endpoint: the whole grid is rejected up front with bad_scale.
func TestSweepBadScaleEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder"},
		Hiers:     []string{"base"},
		Scale:     -2,
	})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeBadScale {
		t.Errorf("code %q, want %q", er.Error.Code, CodeBadScale)
	}
	if st := getStats(t, ts.URL); st.JobsExecuted != 0 {
		t.Errorf("jobs_executed = %d after rejected sweep, want 0", st.JobsExecuted)
	}
}

// TestRunSampledEndToEnd runs one small job both ways through the HTTP
// surface: the sampled response carries the sampling identity in job, the
// same retired count as the monolithic run, and a distinct cache entry.
func TestRunSampledEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	monoResp := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "inorder"})
	monoBody := readBody(t, monoResp)
	if monoResp.StatusCode != http.StatusOK {
		t.Fatalf("monolithic: status %d, body %s", monoResp.StatusCode, monoBody)
	}
	var mono RunResponse
	if err := json.Unmarshal(monoBody, &mono); err != nil {
		t.Fatal(err)
	}

	sampResp := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Workload: "crafty", Model: "inorder",
		Sample: &SampleOverrides{Interval: 2048},
	})
	sampBody := readBody(t, sampResp)
	if sampResp.StatusCode != http.StatusOK {
		t.Fatalf("sampled: status %d, body %s", sampResp.StatusCode, sampBody)
	}
	if got := sampResp.Header.Get("X-Mpsimd-Cache"); got != "miss" {
		t.Errorf("sampled run cache header = %q, want miss (distinct job identity)", got)
	}
	var samp RunResponse
	if err := json.Unmarshal(sampBody, &samp); err != nil {
		t.Fatal(err)
	}
	if samp.Job.SampleInterval != 2048 || samp.Job.SampleWarmup != 512 {
		t.Errorf("sampled job identity = %+v", samp.Job)
	}
	if samp.Stats.Retired != mono.Stats.Retired {
		t.Errorf("sampled retired %d vs monolithic %d, want exact match", samp.Stats.Retired, mono.Stats.Retired)
	}
	if samp.Stats.Cycles == 0 {
		t.Error("sampled run reported zero cycles")
	}
}
