package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestSweepStreamSingleNode pins the NDJSON contract of
// /v1/sweep?stream=true on a standalone server: one "job" record per cell
// in completion order (request order recoverable via index), exactly one
// terminating "summary" record, and a per-worker disposition map with the
// synthetic "local" entry covering the whole grid.
func TestSweepStreamSingleNode(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	req := SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", "multipass", "runahead", "ooo"},
		Hiers:     []string{"base", "config1", "config2"},
	}
	const cells = 12

	resp := postJSON(t, ts.URL+"/v1/sweep?stream=true", req)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	var jobs, summaries int
	var last SweepStreamRecord
	seen := make(map[int]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if summaries > 0 {
			t.Fatalf("record after the summary terminator: %s", sc.Text())
		}
		var rec SweepStreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON record %q: %v", sc.Text(), err)
		}
		if rec.SchemaVersion != APISchemaVersion {
			t.Fatalf("record schema_version = %d", rec.SchemaVersion)
		}
		switch rec.Type {
		case StreamRecordJob:
			jobs++
			if rec.Index == nil || *rec.Index < 0 || *rec.Index >= cells || seen[*rec.Index] {
				t.Fatalf("bad or duplicate index in %s", sc.Text())
			}
			seen[*rec.Index] = true
			if rec.SweepJob == nil || rec.Stats == nil || rec.Stats.Cycles == 0 {
				t.Fatalf("job record without stats: %s", sc.Text())
			}
		case StreamRecordSummary:
			summaries++
			last = rec
		default:
			t.Fatalf("unknown record type %q", rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if jobs != cells || summaries != 1 {
		t.Fatalf("%d job records, %d summaries; want %d and 1", jobs, summaries, cells)
	}
	if last.Summary == nil || last.Summary.Total != cells || last.Summary.Failed != 0 {
		t.Fatalf("summary = %+v", last.Summary)
	}
	local, ok := last.Workers["local"]
	if !ok || len(last.Workers) != 1 {
		t.Fatalf("workers = %+v, want exactly the synthetic local entry", last.Workers)
	}
	if !local.Healthy || local.Dispatched != cells || local.Completed != cells || local.Failed != 0 {
		t.Errorf("local disposition = %+v", local)
	}
}

// TestSweepStreamBufferedUnchanged: asking for the stream does not perturb
// the buffered response — the same grid fetched without stream=true is
// byte-identical across repeats (the replay guarantee sweeps inherit from
// the result cache).
func TestSweepStreamBufferedUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder"},
		Hiers:     []string{"base", "config1"},
	}

	first := readBody(t, postJSON(t, ts.URL+"/v1/sweep", req))
	// Stream the same grid, then fetch buffered again.
	resp := postJSON(t, ts.URL+"/v1/sweep?stream=true", req)
	readBody(t, resp)
	second := readBody(t, postJSON(t, ts.URL+"/v1/sweep", req))

	var a, b SweepResponse
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) || a.Summary.Total != b.Summary.Total {
		t.Fatalf("buffered sweep shape changed: %+v vs %+v", a.Summary, b.Summary)
	}
	for i := range a.Jobs {
		af, _ := json.Marshal(a.Jobs[i].Job)
		bf, _ := json.Marshal(b.Jobs[i].Job)
		if string(af) != string(bf) {
			t.Errorf("job %d identity changed across stream interleave", i)
		}
		if a.Jobs[i].Stats == nil || b.Jobs[i].Stats == nil {
			t.Fatalf("job %d missing stats", i)
		}
		if a.Jobs[i].Stats.Cycles != b.Jobs[i].Stats.Cycles {
			t.Errorf("job %d cycles diverge: %d vs %d", i, a.Jobs[i].Stats.Cycles, b.Jobs[i].Stats.Cycles)
		}
	}
}

// TestSweepStreamClientDisconnect: a streaming client that vanishes
// mid-sweep must not strand the server — in-flight cells observe the dead
// request context and unwind, the worker pool drains, and the server keeps
// serving new requests normally.
func TestSweepStreamClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	req := SweepRequest{
		Workloads: []string{"crafty", "gzip"},
		Models:    []string{"inorder", "multipass", "runahead", "ooo"},
		Hiers:     []string{"base", "config1", "config2"},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/sweep?stream=true", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	// Read one record to prove the stream is live, then hang up.
	if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
		t.Fatalf("no first stream record before disconnect: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The pool must drain: every in-flight cell sees the canceled context.
	deadline := time.Now().Add(15 * time.Second)
	for srv.inFlight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in_flight = %d long after client disconnect", srv.inFlight.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the server still serves: a fresh request succeeds end to end.
	rresp := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "inorder"})
	body := readBody(t, rresp)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect run: status %d, body %.200s", rresp.StatusCode, body)
	}
}
