package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"multipass/internal/mem"
	"multipass/internal/obs"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// planSweep expands a sweep request into its fully-normalized job grid.
// Every cell of the cross product is validated before anything is enqueued:
// a typo in cell 40 of 60 is a 400 up front, never 39 burned simulations.
// Empty axes default to everything the registries enumerate.
func (s *Server) planSweep(req *SweepRequest) ([]JobSpec, error) {
	if req.TimeoutMS < 0 {
		// Match the /v1/run contract: a negative timeout is a client
		// error, not something to silently fall through to the server
		// default.
		return nil, apiErrorf(http.StatusBadRequest, CodeBadTimeout, "timeout_ms must be >= 0",
			"timeout_ms %d < 0", req.TimeoutMS)
	}
	if len(req.Workloads) == 0 {
		for _, wl := range workload.All() {
			req.Workloads = append(req.Workloads, wl.Name)
		}
	}
	if len(req.Models) == 0 {
		req.Models = sim.Names()
	}
	if len(req.Hiers) == 0 {
		req.Hiers = mem.ConfigNames()
	}

	var specs []JobSpec
	for _, wl := range req.Workloads {
		for _, hier := range req.Hiers {
			for _, model := range req.Models {
				rr := RunRequest{
					Workload: wl, Model: model, Hier: hier,
					Scale: req.Scale, Compile: req.Compile, MaxInsts: req.MaxInsts,
					Sample: req.Sample,
				}
				spec, err := normalize(&rr)
				if err != nil {
					return nil, err
				}
				specs = append(specs, spec)
			}
		}
	}
	if len(specs) > s.cfg.MaxSweepJobs {
		return nil, apiErrorf(http.StatusBadRequest, CodeQueueFull,
			fmt.Sprintf("shrink an axis or raise the limit (%d)", s.cfg.MaxSweepJobs),
			"sweep grid has %d jobs, limit %d", len(specs), s.cfg.MaxSweepJobs)
	}
	return specs, nil
}

// sweepJob runs one cell through the cache/dispatch path and folds the
// outcome into a SweepJob. disp reports the cache disposition for logging.
func (s *Server) sweepJob(ctx context.Context, spec JobSpec) (job SweepJob, disp string) {
	job = SweepJob{Job: spec}
	data, disp, err := s.runCached(ctx, spec, nil)
	if err != nil {
		job.Status = JobFailed
		job.Error = err.Error()
		return job, disp
	}
	var rr RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		job.Status = JobFailed
		job.Error = fmt.Sprintf("decode cached result: %v", err)
		return job, disp
	}
	job.Stats = &rr.Stats
	if disp == dispMiss {
		job.Status = JobDone
	} else {
		job.Status = JobCached
	}
	return job, disp
}

// runSweep fans the grid out and reports every completed cell to emit (in
// completion order, from worker goroutines — emit must be safe for
// concurrent use). It returns the jobs in grid order plus the summary, with
// every cell accounted for: done, cached, or failed.
func (s *Server) runSweep(ctx context.Context, tr *obs.Trace, specs []JobSpec, emit func(i int, job SweepJob)) ([]SweepJob, SweepSummary) {
	jobs := make([]SweepJob, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			jobStart := time.Now()
			job, disp := s.sweepJob(ctx, spec)
			jobs[i] = job
			if emit != nil {
				emit(i, job)
			}
			s.log.Debug("sweep job",
				"request_id", tr.ID,
				"workload", spec.Workload, "model", spec.Model, "hier", spec.Hier,
				"status", job.Status, "cache", disp,
				"dur_ms", float64(time.Since(jobStart))/float64(time.Millisecond),
			)
		}(i, spec)
	}
	wg.Wait()

	var sum SweepSummary
	for _, job := range jobs {
		sum.Total++
		switch job.Status {
		case JobDone:
			sum.Done++
		case JobCached:
			sum.Cached++
		default:
			sum.Failed++
		}
	}
	return jobs, sum
}

// sweepWorkers builds the per-worker disposition map for a sweep's summary
// record: the delta of the fabric dispatcher's counters across the sweep in
// coordinator mode, or a single synthetic "local" entry otherwise.
func (s *Server) sweepWorkers(before map[string]WorkerDisposition, sum SweepSummary) map[string]WorkerDisposition {
	if s.cfg.Dispatcher == nil {
		n := uint64(sum.Total)
		return map[string]WorkerDisposition{
			"local": {
				Healthy:    true,
				Member:     true,
				Dispatched: n,
				Completed:  n - uint64(sum.Failed),
				Failed:     uint64(sum.Failed),
			},
		}
	}
	after := s.cfg.Dispatcher.Dispositions()
	out := make(map[string]WorkerDisposition, len(after))
	for url, d := range after {
		b := before[url]
		out[url] = WorkerDisposition{
			Healthy:        d.Healthy,
			Member:         d.Member,
			Dispatched:     d.Dispatched - b.Dispatched,
			Completed:      d.Completed - b.Completed,
			Retried:        d.Retried - b.Retried,
			RetriedSuccess: d.RetriedSuccess - b.RetriedSuccess,
			Failed:         d.Failed - b.Failed,
			Stolen:         d.Stolen - b.Stolen,
		}
	}
	return out
}

// streamRequested reports whether the sweep asked for NDJSON streaming.
func streamRequested(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return false
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, errMethodNotAllowed(http.MethodPost))
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errBadBody(err))
		return
	}
	specs, err := s.planSweep(&req)
	if err != nil {
		writeError(w, err)
		return
	}

	tr := obs.FromContext(r.Context())
	if tr == nil {
		tr = obs.NewTrace("")
	}
	ctx, cancel := s.deadline(obs.WithTrace(r.Context(), tr), req.TimeoutMS)
	defer cancel()

	var before map[string]WorkerDisposition
	if s.cfg.Dispatcher != nil {
		before = s.cfg.Dispatcher.Dispositions()
	}

	if streamRequested(r) {
		s.streamSweep(w, ctx, tr, specs, before)
		return
	}

	jobs, sum := s.runSweep(ctx, tr, specs, nil)
	resp := SweepResponse{SchemaVersion: APISchemaVersion, Jobs: jobs, Summary: sum}
	s.logSweep(tr, sum)
	// A full span list over hundreds of jobs would bloat the header; the
	// sweep reports its shape and total only.
	w.Header().Set(headerTrace, sweepTraceHeader(tr, sum))
	writeJSON(w, http.StatusOK, &resp)
}

// streamSweep writes the sweep as newline-delimited JSON: one "job" record
// per cell as it completes, flushed eagerly so a `curl -N` client sees
// results land, terminated by exactly one "summary" record carrying the
// per-worker disposition counts.
func (s *Server) streamSweep(w http.ResponseWriter, ctx context.Context, tr *obs.Trace, specs []JobSpec, before map[string]WorkerDisposition) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(headerTrace, fmt.Sprintf("id=%s;jobs=%d;stream=true", tr.ID, len(specs)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex
	enc := json.NewEncoder(w)
	writeRecord := func(rec SweepStreamRecord) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(rec)
		if flusher != nil {
			flusher.Flush()
		}
	}

	_, sum := s.runSweep(ctx, tr, specs, func(i int, job SweepJob) {
		idx := i
		writeRecord(SweepStreamRecord{
			SchemaVersion: APISchemaVersion,
			Type:          StreamRecordJob,
			Index:         &idx,
			SweepJob:      &job,
		})
	})
	s.logSweep(tr, sum)
	writeRecord(SweepStreamRecord{
		SchemaVersion: APISchemaVersion,
		Type:          StreamRecordSummary,
		Summary:       &sum,
		Workers:       s.sweepWorkers(before, sum),
	})
}

func (s *Server) logSweep(tr *obs.Trace, sum SweepSummary) {
	s.log.Info("sweep",
		"request_id", tr.ID,
		"jobs", sum.Total, "done", sum.Done,
		"cached", sum.Cached, "failed", sum.Failed,
		"dur_ms", float64(tr.Elapsed())/float64(time.Millisecond),
	)
}

func sweepTraceHeader(tr *obs.Trace, sum SweepSummary) string {
	return fmt.Sprintf("id=%s;jobs=%d;total=%.3fms",
		tr.ID, sum.Total, float64(tr.Elapsed())/float64(time.Millisecond))
}
