package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestPersistDirResume is the sweep-resumption contract at the server
// level: results written under PersistDir by one process are restored by
// the next one, so a repeated sweep is served entirely from disk — byte
// identical to a cached re-run on an uninterrupted server — and a single
// cell replays as a cache hit without re-executing.
func TestPersistDirResume(t *testing.T) {
	dir := t.TempDir()
	req := SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base", "config1"},
	}

	// First process: run the sweep twice. The second pass is the all-cached
	// steady state — the reference for what a resumed sweep must serve.
	srvA, tsA := newTestServer(t, Config{Workers: 4, PersistDir: dir})
	readBody(t, postJSON(t, tsA.URL+"/v1/sweep", req))
	want := readBody(t, postJSON(t, tsA.URL+"/v1/sweep", req))
	executed := srvA.cache.misses.Load()
	if executed == 0 {
		t.Fatal("first sweep executed nothing")
	}
	tsA.Close()

	// Second process on the same dir: the whole grid restores from disk.
	srvB, tsB := newTestServer(t, Config{Workers: 4, PersistDir: dir})
	got := readBody(t, postJSON(t, tsB.URL+"/v1/sweep", req))
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed sweep diverges from the cached reference:\nwant %.300s\n got %.300s", want, got)
	}
	if srvB.cache.misses.Load() != 0 {
		t.Errorf("resumed server executed %d cells, want 0 (all restored)", srvB.cache.misses.Load())
	}
	if srvB.cache.diskRestores.Load() == 0 {
		t.Error("diskRestores = 0: the resumed grid did not come from the persist dir")
	}

	// Per-cell replay on the restarted server is a cache hit.
	resp := postJSON(t, tsB.URL+"/v1/run", RunRequest{Workload: "crafty", Model: "inorder"})
	readBody(t, resp)
	if hdr := resp.Header.Get("X-Mpsimd-Cache"); hdr != "hit" {
		t.Errorf("replay cache header = %q, want hit", hdr)
	}

	// The restores are visible on /metrics.
	mresp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if text := string(readBody(t, mresp)); !strings.Contains(text, "mpsimd_cache_disk_restores_total") {
		t.Error("/metrics missing mpsimd_cache_disk_restores_total")
	}
}

// TestPersistDirPartialResume: only the cells missing from the persist dir
// execute after a restart — the resumption path re-dispatches incrementally
// rather than all-or-nothing.
func TestPersistDirPartialResume(t *testing.T) {
	dir := t.TempDir()

	srvA, tsA := newTestServer(t, Config{Workers: 4, PersistDir: dir})
	readBody(t, postJSON(t, tsA.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder"},
		Hiers:     []string{"base", "config1"},
	}))
	if srvA.cache.misses.Load() != 2 {
		t.Fatalf("seed sweep executed %d cells, want 2", srvA.cache.misses.Load())
	}
	tsA.Close()

	// The restarted server sweeps a superset: 2 cells restore, 2 execute.
	srvB, tsB := newTestServer(t, Config{Workers: 4, PersistDir: dir})
	readBody(t, postJSON(t, tsB.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"crafty"},
		Models:    []string{"inorder", "multipass"},
		Hiers:     []string{"base", "config1"},
	}))
	if got := srvB.cache.misses.Load(); got != 2 {
		t.Errorf("resumed superset executed %d cells, want exactly the 2 missing ones", got)
	}
	if got := srvB.cache.diskRestores.Load(); got != 2 {
		t.Errorf("diskRestores = %d, want 2", got)
	}
}

// TestResultCachePersistRoundTrip covers the cache layer directly: put
// writes through to disk, a fresh cache on the same dir restores on get,
// and non-hex keys never touch the filesystem.
func TestResultCachePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := strings.Repeat("ab", 32)
	payload := []byte(`{"x":1}`)

	c1 := newResultCache(0, dir)
	c1.put(key, payload)

	c2 := newResultCache(0, dir)
	data, ok := c2.get(key)
	if !ok || !bytes.Equal(data, payload) {
		t.Fatalf("restore = (%q, %v), want the persisted payload", data, ok)
	}
	if c2.diskRestores.Load() != 1 {
		t.Errorf("diskRestores = %d, want 1", c2.diskRestores.Load())
	}
	// Second get is a pure memory hit: no second restore.
	if _, ok := c2.get(key); !ok || c2.diskRestores.Load() != 1 {
		t.Error("restored entry not held in memory")
	}

	// Path-shaped keys must never reach the filesystem.
	c1.put("../escape", []byte("nope"))
	if _, ok := c2.get("../escape"); ok {
		t.Error("non-hex key round-tripped through the persist dir")
	}
}
