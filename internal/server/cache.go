package server

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// cacheShards is the number of independently locked shards. 32 keeps lock
// contention negligible at worker-pool concurrency while costing nothing at
// rest.
const cacheShards = 32

// defaultMaxCacheBytes bounds the result cache when Config.MaxCacheBytes is
// unset: distinct scale/max_insts values must not grow memory without bound.
const defaultMaxCacheBytes = 256 << 20 // 256 MiB

// entryOverhead approximates the per-entry bookkeeping cost (map bucket,
// ring slot, struct headers) charged against the byte budget on top of the
// key and payload.
const entryOverhead = 96

// cacheEntry is one immutable cached result plus its clock reference bit.
type cacheEntry struct {
	key  string
	data []byte
	// ref is the second-chance bit: set on every hit, cleared by the clock
	// hand, evicted when found clear. Atomic so get needs only the read
	// lock.
	ref atomic.Bool
}

func (e *cacheEntry) size() int64 {
	return int64(len(e.key)) + int64(len(e.data)) + entryOverhead
}

// cacheShard is one lock domain: a map for lookup plus a clock ring for
// eviction order.
type cacheShard struct {
	mu    sync.RWMutex
	m     map[string]*cacheEntry
	ring  []*cacheEntry
	hand  int
	bytes int64
}

// resultCache is a sharded, content-addressed map from a job key (hex
// SHA-256 of the canonical JobSpec) to the marshaled response body, bounded
// by a byte budget with clock (second-chance) eviction per shard. Values
// are immutable once inserted: simulations are deterministic, so any two
// computations of the same key produce the same bytes and last-write-wins
// racing is harmless.
//
// The hit/miss/coalesced counters are owned by the request path (runCached
// resolves exactly one disposition per request); the cache itself maintains
// evictions and totalBytes.
type resultCache struct {
	shards      [cacheShards]cacheShard
	shardBudget int64
	// dir, when non-empty, persists every entry as a file named by its key
	// so a restarted server resumes with its results intact (the sweep
	// resumption path). Disk writes are best-effort; the memory cache is
	// authoritative within one process lifetime.
	dir string

	hits         atomic.Uint64
	misses       atomic.Uint64
	coalesced    atomic.Uint64
	evictions    atomic.Uint64
	diskRestores atomic.Uint64
	totalBytes   atomic.Int64
}

// newResultCache builds a cache bounded to roughly maxBytes across all
// shards; maxBytes <= 0 uses the default. dir != "" enables persistence.
func newResultCache(maxBytes int64, dir string) *resultCache {
	if maxBytes <= 0 {
		maxBytes = defaultMaxCacheBytes
	}
	budget := maxBytes / cacheShards
	if budget < 1 {
		budget = 1
	}
	c := &resultCache{shardBudget: budget, dir: dir}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// shardIndex hashes the full key with FNV-1a. The previous picker used
// key[0]%32, which maps hex keys (16 possible first bytes) onto only 16 of
// the 32 shards; hashing every byte restores uniform coverage.
func shardIndex(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h % cacheShards
}

func (c *resultCache) shard(key string) *cacheShard {
	return &c.shards[shardIndex(key)]
}

// get returns the cached bytes for key and marks the entry recently used.
// A memory miss falls through to the persist directory (when configured):
// an entry written by a previous process — or one evicted by the byte
// budget — is restored into memory and served as a hit, which is what lets
// a restarted coordinator re-dispatch only the cells it is missing. get
// does not count hits or misses: the request path resolves each request's
// disposition exactly once.
func (c *resultCache) get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		e.ref.Store(true)
		return e.data, true
	}
	if c.dir == "" || !hexKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key))
	if err != nil {
		return nil, false
	}
	c.diskRestores.Add(1)
	c.insert(key, data)
	return data, true
}

// hexKey guards the persist path: only content-address-shaped keys (hex
// digests) ever touch the filesystem, so a key can never be a path.
func hexKey(key string) bool {
	if key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// put stores the bytes for key in memory and, when persistence is on,
// writes them through to disk (atomic tmp+rename, best-effort) so a future
// process can restore them.
func (c *resultCache) put(key string, data []byte) {
	c.insert(key, data)
	if c.dir != "" && hexKey(key) {
		writeFileAtomic(filepath.Join(c.dir, key), data)
	}
}

// insert stores the bytes for key in the memory cache only, then evicts
// clock-style until the shard is back under its byte budget (always
// keeping at least one entry, so a single oversized result still caches
// rather than thrashing).
func (c *resultCache) insert(key string, data []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		// Entries are immutable; a racing duplicate insert is the same bytes.
		return
	}
	// Inserted with the ref bit clear, per classic clock: an entry earns
	// its second chance from a hit, not from insertion, so a repeatedly
	// hit entry outlives a stream of never-read ones.
	e := &cacheEntry{key: key, data: data}
	s.m[key] = e
	s.ring = append(s.ring, e)
	s.bytes += e.size()
	c.totalBytes.Add(e.size())

	for s.bytes > c.shardBudget && len(s.ring) > 1 {
		c.evictOne(s)
	}
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// crash mid-write never leaves a torn entry for a future restore to trust.
// Errors are swallowed: persistence is an optimization, not a promise.
func writeFileAtomic(path string, data []byte) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

// evictOne advances the clock hand under the shard lock: referenced entries
// get a second chance, the first unreferenced one is evicted.
func (c *resultCache) evictOne(s *cacheShard) {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		e := s.ring[s.hand]
		if e.ref.CompareAndSwap(true, false) {
			s.hand++
			continue
		}
		delete(s.m, e.key)
		s.ring = append(s.ring[:s.hand], s.ring[s.hand+1:]...)
		s.bytes -= e.size()
		c.totalBytes.Add(-e.size())
		c.evictions.Add(1)
		return
	}
}

// len returns the total number of cached entries.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// bytes returns the total byte footprint charged against the budget.
func (c *resultCache) bytes() int64 { return c.totalBytes.Load() }
