package server

import (
	"sync"
	"sync/atomic"
)

// cacheShards is the number of independently locked shards. 32 keeps lock
// contention negligible at worker-pool concurrency while costing nothing at
// rest.
const cacheShards = 32

// resultCache is a sharded, content-addressed map from a job key (hex
// SHA-256 of the canonical JobSpec) to the marshaled response body. Values
// are immutable once inserted: simulations are deterministic, so any two
// computations of the same key produce the same bytes and last-write-wins
// racing is harmless.
type resultCache struct {
	shards [cacheShards]struct {
		mu sync.RWMutex
		m  map[string][]byte
	}
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newResultCache() *resultCache {
	c := &resultCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string][]byte)
	}
	return c
}

// shard picks a shard from the first byte of the hex key — already uniform,
// since the key is a cryptographic hash.
func (c *resultCache) shard(key string) *struct {
	mu sync.RWMutex
	m  map[string][]byte
} {
	var b byte
	if len(key) > 0 {
		b = key[0]
	}
	return &c.shards[int(b)%cacheShards]
}

// get returns the cached bytes for key, counting the outcome.
func (c *resultCache) get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.RLock()
	data, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return data, ok
}

// put stores the bytes for key.
func (c *resultCache) put(key string, data []byte) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = data
	s.mu.Unlock()
}

// len returns the total number of cached entries.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
