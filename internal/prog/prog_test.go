package prog

import (
	"testing"

	"multipass/internal/arch"
	"multipass/internal/isa"
)

// buildCountdown builds: r1 = n; loop { r2 += r1; r1-- } until r1 == 0.
func buildCountdown(n int32) *Unit {
	u := NewUnit()
	r1, r2 := isa.IntReg(1), isa.IntReg(2)
	p1 := isa.PredReg(1)
	entry := u.NewBlock("entry")
	entry.MovI(r1, n)
	entry.MovI(r2, 0)
	loop := u.NewBlock("loop")
	loop.Op3(isa.OpAdd, r2, r2, r1)
	loop.OpI(isa.OpSubI, r1, r1, 1)
	loop.CmpI(isa.OpCmpNeI, p1, isa.PredReg(2), r1, 0)
	loop.Br(p1, "loop")
	exit := u.NewBlock("exit")
	exit.Halt()
	return u
}

func TestBuildAndLink(t *testing.T) {
	u := buildCountdown(10)
	p, err := u.Link()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 7 {
		t.Fatalf("linked %d instructions, want 7", len(p.Insts))
	}
	if p.Symbols["loop"] != 2 || p.Symbols["exit"] != 6 {
		t.Errorf("symbols = %v", p.Symbols)
	}
	br := p.Insts[5]
	if br.Op != isa.OpBr || br.Target != 2 {
		t.Errorf("branch = %+v", br)
	}
	res, err := arch.Run(p, arch.NewMemory(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.State.RF.Read(isa.IntReg(2)).Uint32(); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	// Undefined branch target.
	u := NewUnit()
	b := u.NewBlock("entry")
	b.Br(isa.PredReg(1), "nowhere")
	b.Halt()
	if _, err := u.Link(); err == nil {
		t.Error("undefined target accepted")
	}

	// Duplicate labels.
	u2 := NewUnit()
	u2.NewBlock("x").Halt()
	u2.NewBlock("x").Halt()
	if _, err := u2.Link(); err == nil {
		t.Error("duplicate label accepted")
	}

	// Fallthrough off the end.
	u3 := NewUnit()
	u3.NewBlock("entry").Nop()
	if _, err := u3.Link(); err == nil {
		t.Error("fallthrough off end accepted")
	}

	// Empty unit.
	if _, err := NewUnit().Link(); err == nil {
		t.Error("empty unit accepted")
	}
}

func TestSuccs(t *testing.T) {
	u := buildCountdown(3)
	loop := u.BlockByLabel("loop")
	succs := loop.Succs("exit")
	if len(succs) != 2 || succs[0] != "loop" || succs[1] != "exit" {
		t.Errorf("loop succs = %v", succs)
	}
	entry := u.BlockByLabel("entry")
	if s := entry.Succs("loop"); len(s) != 1 || s[0] != "loop" {
		t.Errorf("entry succs = %v", s)
	}
	exit := u.BlockByLabel("exit")
	if s := exit.Succs(""); len(s) != 0 {
		t.Errorf("exit succs = %v", s)
	}
	// A block ending in an unconditional jmp has no fallthrough successor.
	u2 := NewUnit()
	a := u2.NewBlock("a")
	a.Jmp("b")
	u2.NewBlock("b").Halt()
	if s := a.Succs("b"); len(s) != 1 || s[0] != "b" {
		t.Errorf("jmp succs = %v", s)
	}
}

func TestEmitDefaultsQP(t *testing.T) {
	u := NewUnit()
	b := u.NewBlock("entry")
	in := b.Emit(isa.Inst{Op: isa.OpMovI, Dst: isa.IntReg(1), Imm: 5}, "")
	if in.QP != isa.P0 {
		t.Errorf("QP defaulted to %v, want p0", in.QP)
	}
	b.Halt()
	if _, err := u.Link(); err != nil {
		t.Fatal(err)
	}
}

func TestPredicatedEmit(t *testing.T) {
	u := NewUnit()
	b := u.NewBlock("entry")
	b.MovI(isa.IntReg(1), 1)
	b.CmpI(isa.OpCmpEqI, isa.PredReg(1), isa.PredReg(2), isa.IntReg(1), 1)
	b.MovI(isa.IntReg(2), 100).QP = isa.PredReg(1)
	b.MovI(isa.IntReg(3), 200).QP = isa.PredReg(2)
	b.Halt()
	res, err := arch.Run(u.MustLink(), arch.NewMemory(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.RF.Read(isa.IntReg(2)).Uint32() != 100 {
		t.Error("true-predicated move did not execute")
	}
	if res.State.RF.Read(isa.IntReg(3)).Uint32() != 0 {
		t.Error("false-predicated move executed")
	}
}

func TestBranchLabelSync(t *testing.T) {
	u := NewUnit()
	b := u.NewBlock("entry")
	b.Nop()
	b.BranchLabels = append(b.BranchLabels, "extra") // corrupt on purpose
	b.Halt()
	if err := u.Verify(); err == nil {
		t.Error("out-of-sync BranchLabels accepted")
	}
}
