// Package prog provides the compiler-facing intermediate representation: a
// control-flow graph of basic blocks holding isa instructions, a builder API
// for writing kernels by hand, and a linker that lays the blocks out into a
// flat, executable isa.Program.
//
// Branch targets are symbolic (block labels) at the IR level; prog.Link
// resolves them to instruction indices. Within a block, instructions execute
// in order; control may leave the block at any branch instruction, and falls
// through to the next block in layout order unless the block ends with an
// unconditional transfer.
package prog

import (
	"fmt"

	"multipass/internal/isa"
)

// Block is one basic block: a label, the instructions, and the symbolic
// branch target for each branch instruction.
type Block struct {
	Label string
	Insts []isa.Inst
	// BranchLabels is parallel to Insts: the target label for branch
	// instructions, "" otherwise.
	BranchLabels []string
}

// Unit is a compilation unit: an ordered list of blocks. The first block is
// the entry point. Layout order defines fallthrough edges.
type Unit struct {
	Blocks []*Block
}

// NewUnit returns an empty compilation unit.
func NewUnit() *Unit { return &Unit{} }

// NewBlock appends a new empty block with the given label and returns it.
// Labels must be unique within the unit.
func (u *Unit) NewBlock(label string) *Block {
	b := &Block{Label: label}
	u.Blocks = append(u.Blocks, b)
	return b
}

// BlockByLabel returns the block with the given label, or nil.
func (u *Unit) BlockByLabel(label string) *Block {
	for _, b := range u.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// Emit appends an instruction with an optional symbolic branch target and
// returns a pointer to the stored instruction for further adjustment (for
// example to set the qualifying predicate).
func (b *Block) Emit(in isa.Inst, branchLabel string) *isa.Inst {
	if in.QP.IsNone() {
		in.QP = isa.P0
	}
	if in.Op.Info().Shape.Branch {
		in.Target = -1
	}
	b.Insts = append(b.Insts, in)
	b.BranchLabels = append(b.BranchLabels, branchLabel)
	return &b.Insts[len(b.Insts)-1]
}

// Op3 emits a three-register operation dst = op(a, b2).
func (b *Block) Op3(op isa.Op, dst, a, b2 isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Dst: dst, Src1: a, Src2: b2}, "")
}

// OpI emits a register-immediate operation dst = op(a, imm).
func (b *Block) OpI(op isa.Op, dst, a isa.Reg, imm int32) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Dst: dst, Src1: a, Imm: imm}, "")
}

// MovI emits dst = imm.
func (b *Block) MovI(dst isa.Reg, imm int32) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpMovI, Dst: dst, Imm: imm}, "")
}

// Mov emits an integer register move.
func (b *Block) Mov(dst, src isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpMov, Dst: dst, Src1: src}, "")
}

// Load emits dst = op [base+off].
func (b *Block) Load(op isa.Op, dst, base isa.Reg, off int32) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Dst: dst, Src1: base, Imm: off}, "")
}

// Store emits op [base+off] = src.
func (b *Block) Store(op isa.Op, base isa.Reg, off int32, src isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Src1: base, Imm: off, Src2: src}, "")
}

// Cmp emits pt, pf = op(a, b2).
func (b *Block) Cmp(op isa.Op, pt, pf, a, b2 isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Dst: pt, Dst2: pf, Src1: a, Src2: b2}, "")
}

// CmpI emits pt, pf = op(a, imm).
func (b *Block) CmpI(op isa.Op, pt, pf, a isa.Reg, imm int32) *isa.Inst {
	return b.Emit(isa.Inst{Op: op, Dst: pt, Dst2: pf, Src1: a, Imm: imm}, "")
}

// Br emits a conditional branch to the labelled block, taken when qp is true.
func (b *Block) Br(qp isa.Reg, label string) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpBr, QP: qp}, label)
}

// Jmp emits an unconditional branch to the labelled block.
func (b *Block) Jmp(label string) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpJmp}, label)
}

// Restart emits a multipass advance-restart hint consuming r.
func (b *Block) Restart(r isa.Reg) *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpRestart, Src1: r}, "")
}

// Halt emits a program terminator.
func (b *Block) Halt() *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpHalt}, "")
}

// Nop emits a no-op.
func (b *Block) Nop() *isa.Inst {
	return b.Emit(isa.Inst{Op: isa.OpNop}, "")
}

// endsUnconditionally reports whether the last instruction of the block
// always transfers control (so the block has no fallthrough edge).
func (b *Block) endsUnconditionally() bool {
	if len(b.Insts) == 0 {
		return false
	}
	last := &b.Insts[len(b.Insts)-1]
	switch last.Op {
	case isa.OpJmp, isa.OpHalt:
		return true
	case isa.OpBr:
		return last.QP == isa.P0
	}
	return false
}

// Verify checks structural invariants: unique labels, defined branch
// targets, and that the final block does not fall off the end of the unit.
func (u *Unit) Verify() error {
	if len(u.Blocks) == 0 {
		return fmt.Errorf("prog: empty unit")
	}
	labels := make(map[string]bool, len(u.Blocks))
	for _, b := range u.Blocks {
		if b.Label == "" {
			return fmt.Errorf("prog: block with empty label")
		}
		if labels[b.Label] {
			return fmt.Errorf("prog: duplicate block label %q", b.Label)
		}
		labels[b.Label] = true
	}
	for _, b := range u.Blocks {
		if len(b.Insts) != len(b.BranchLabels) {
			return fmt.Errorf("prog: block %q: BranchLabels out of sync", b.Label)
		}
		for i := range b.Insts {
			isBranch := b.Insts[i].Op.Info().Shape.Branch
			if isBranch && !labels[b.BranchLabels[i]] {
				return fmt.Errorf("prog: block %q inst %d: undefined target %q", b.Label, i, b.BranchLabels[i])
			}
			if !isBranch && b.BranchLabels[i] != "" {
				return fmt.Errorf("prog: block %q inst %d: target on non-branch", b.Label, i)
			}
		}
	}
	if last := u.Blocks[len(u.Blocks)-1]; !last.endsUnconditionally() {
		return fmt.Errorf("prog: final block %q falls through past the end", last.Label)
	}
	return nil
}

// Succs returns the labels of the blocks control can reach directly from b,
// in deterministic order: every branch target in instruction order, then the
// fallthrough (if any). next is the label of the next block in layout order,
// "" if b is last.
func (b *Block) Succs(next string) []string {
	var out []string
	seen := make(map[string]bool)
	for i := range b.Insts {
		if b.Insts[i].Op.Info().Shape.Branch {
			t := b.BranchLabels[i]
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	if !b.endsUnconditionally() && next != "" && !seen[next] {
		out = append(out, next)
	}
	return out
}

// Link lays out the blocks in order, resolves branch targets to flat
// instruction indices, and returns the validated executable program.
func (u *Unit) Link() (*isa.Program, error) {
	if err := u.Verify(); err != nil {
		return nil, err
	}
	start := make(map[string]int, len(u.Blocks))
	n := 0
	for _, b := range u.Blocks {
		start[b.Label] = n
		n += len(b.Insts)
	}
	p := &isa.Program{Insts: make([]isa.Inst, 0, n), Symbols: start}
	for _, b := range u.Blocks {
		for i := range b.Insts {
			in := b.Insts[i]
			if in.Op.Info().Shape.Branch {
				in.Target = int32(start[b.BranchLabels[i]])
			}
			p.Insts = append(p.Insts, in)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustLink is Link for known-good units; it panics on error.
func (u *Unit) MustLink() *isa.Program {
	p, err := u.Link()
	if err != nil {
		panic(err)
	}
	return p
}
