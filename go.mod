module multipass

go 1.22
