// Command mpsimd serves the simulation suite over HTTP/JSON: single jobs,
// fan-out sweeps, registry enumeration, and a Prometheus /metrics endpoint,
// with a bounded worker pool and a byte-bounded content-addressed result
// cache.
//
//	mpsimd -addr :8080
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/run -d '{"workload":"mcf","model":"multipass"}'
//	curl -s localhost:8080/metrics
//
// The same binary runs as a fabric node: -worker marks a daemon as a sweep
// worker, and -coordinator turns a daemon into a coordinator that shards
// jobs across a comma-separated worker fleet:
//
//	mpsimd -worker -addr :9101 &
//	mpsimd -worker -addr :9102 &
//	mpsimd -coordinator http://localhost:9101,http://localhost:9102 -addr :8080
//	curl -sN -X POST 'localhost:8080/v1/sweep?stream=true' -d '{"workloads":["mcf"]}'
//
// Fleets can also be dynamic: `-coordinator dynamic` starts a coordinator
// with no static workers, and workers started with `-join <coordinator>`
// enter the fleet via POST /v1/fabric/join and keep a heartbeat lease
// alive (leaving cleanly on shutdown). -persist-dir makes a coordinator's
// results and program bundles survive restarts, so an interrupted sweep
// resumes with only its missing cells re-dispatched:
//
//	mpsimd -coordinator dynamic -advertise http://localhost:8080 -persist-dir /tmp/mpsimd &
//	mpsimd -worker -addr :9101 -join http://localhost:8080 &
//
// See EXPERIMENTS.md for the endpoint reference and a sweep example
// reproducing Figure 7 over HTTP, the README "Distributed mode" section for
// the fabric topology, and the README "Observability" section for the
// metric catalog.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only behind -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"multipass/internal/fabric"
	"multipass/internal/server"
)

// splitURLs parses the -coordinator flag value: comma-separated worker base
// URLs, blanks dropped, trailing slashes trimmed so URL+path joins stay
// canonical.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-request simulation deadline (0 = none)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte budget (0 = 256 MiB default)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	coordinator := flag.String("coordinator", "", "run as a fabric coordinator over this comma-separated list of worker base URLs (e.g. http://host:9101,http://host:9102); the literal value \"dynamic\" starts with no static workers")
	workerMode := flag.Bool("worker", false, "run as a fabric worker (standalone semantics; reported via /v1/worker/health)")
	joinURL := flag.String("join", "", "coordinator base URL to join as a dynamic fleet member (implies -worker); a heartbeat renews the lease and shutdown leaves cleanly")
	advertise := flag.String("advertise", "", "this daemon's externally reachable base URL (default derived from -addr); used for -join heartbeats and coordinator program-bundle refs")
	persistDir := flag.String("persist-dir", "", "persist results and program bundles under this directory so a restarted coordinator resumes interrupted sweeps")
	lease := flag.Duration("lease", 0, "coordinator membership lease TTL for dynamic workers (0 = 15s default)")
	workerSlots := flag.Int("worker-slots", 0, "coordinator-side in-flight jobs per worker (0 = 2 default)")
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *coordinator != "" && (*workerMode || *joinURL != "") {
		fmt.Fprintln(os.Stderr, "-coordinator is mutually exclusive with -worker and -join")
		os.Exit(2)
	}

	self := *advertise
	if self == "" {
		self = advertiseFromAddr(*addr)
	}
	self = strings.TrimRight(self, "/")

	cfg := server.Config{
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxCacheBytes:  *cacheBytes,
		PersistDir:     *persistDir,
		Logger:         log,
	}
	if *workerMode || *joinURL != "" {
		cfg.Role = "worker"
	}
	if *coordinator != "" {
		urls := splitURLs(*coordinator)
		dynamic := *coordinator == "dynamic"
		if dynamic {
			urls = nil
		}
		d, err := fabric.New(fabric.Options{
			Workers:         urls,
			AllowEmptyFleet: dynamic,
			LeaseTTL:        *lease,
			WorkerSlots:     *workerSlots,
			SelfURL:         self,
			PersistDir:      *persistDir,
			Logger:          log,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		d.Start()
		defer d.Stop()
		cfg.Role = "coordinator"
		cfg.Dispatcher = d
		log.Info("fabric coordinator", "workers", urls, "dynamic", dynamic)
	}

	srv := server.New(cfg)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// The profiler gets its own listener and mux so the debug surface is
		// never exposed on the service address. net/http/pprof registers on
		// http.DefaultServeMux; serve that.
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Error("pprof server failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("mpsimd listening", "addr", *addr, "workers", *workers, "timeout", timeout.String())

	if *joinURL != "" {
		coord := strings.TrimRight(*joinURL, "/")
		go heartbeat(ctx, log, coord, self)
		// Leave the fleet on shutdown so the coordinator re-rings
		// immediately instead of waiting out the lease.
		defer fabricPost(coord+"/v1/fabric/leave", self)
	}

	select {
	case err := <-errc:
		log.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		log.Info("shutdown signal received")
	}

	// Graceful drain: in-flight simulations observe their request contexts
	// being canceled by Shutdown's deadline expiring below.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "error", err)
		os.Exit(1)
	}
	log.Info("mpsimd stopped")
}

// advertiseFromAddr derives a default externally reachable base URL from a
// listen address: ":8080" becomes "http://localhost:8080", "host:port"
// passes through with the scheme added.
func advertiseFromAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// heartbeat keeps this worker's membership lease alive: an initial join
// (retried until the coordinator answers) followed by renewals at a third
// of the granted TTL. Renewal failures are retried at the same cadence —
// the coordinator expires the lease if the worker really is gone.
func heartbeat(ctx context.Context, log *slog.Logger, coord, self string) {
	interval := 5 * time.Second
	for first := true; ; first = false {
		if !first {
			select {
			case <-ctx.Done():
				return
			case <-time.After(interval):
			}
		}
		ttlMS, err := fabricPost(coord+"/v1/fabric/join", self)
		if err != nil {
			log.Warn("fabric join failed, will retry", "coordinator", coord, "err", err)
			continue
		}
		if first {
			log.Info("joined fabric", "coordinator", coord, "as", self, "ttl_ms", ttlMS)
		}
		if ttlMS > 0 {
			interval = time.Duration(ttlMS) * time.Millisecond / 3
		}
	}
}

// fabricPost posts a JoinRequest to a coordinator membership endpoint and
// returns the granted lease TTL (0 for leave).
func fabricPost(endpoint, self string) (int64, error) {
	body, _ := json.Marshal(server.JoinRequest{URL: self})
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var jr server.JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return 0, err
	}
	return jr.TTLMS, nil
}

// newLogger builds the process logger from the -log-format and -log-level
// flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}
