// Command mpsimd serves the simulation suite over HTTP/JSON: single jobs,
// fan-out sweeps, registry enumeration, and a Prometheus /metrics endpoint,
// with a bounded worker pool and a byte-bounded content-addressed result
// cache.
//
//	mpsimd -addr :8080
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/run -d '{"workload":"mcf","model":"multipass"}'
//	curl -s localhost:8080/metrics
//
// The same binary runs as a fabric node: -worker marks a daemon as a sweep
// worker, and -coordinator turns a daemon into a coordinator that shards
// jobs across a comma-separated worker fleet:
//
//	mpsimd -worker -addr :9101 &
//	mpsimd -worker -addr :9102 &
//	mpsimd -coordinator http://localhost:9101,http://localhost:9102 -addr :8080
//	curl -sN -X POST 'localhost:8080/v1/sweep?stream=true' -d '{"workloads":["mcf"]}'
//
// See EXPERIMENTS.md for the endpoint reference and a sweep example
// reproducing Figure 7 over HTTP, the README "Distributed mode" section for
// the fabric topology, and the README "Observability" section for the
// metric catalog.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only behind -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"multipass/internal/fabric"
	"multipass/internal/server"
)

// splitURLs parses the -coordinator flag value: comma-separated worker base
// URLs, blanks dropped, trailing slashes trimmed so URL+path joins stay
// canonical.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-request simulation deadline (0 = none)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte budget (0 = 256 MiB default)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	coordinator := flag.String("coordinator", "", "run as a fabric coordinator over this comma-separated list of worker base URLs (e.g. http://host:9101,http://host:9102)")
	workerMode := flag.Bool("worker", false, "run as a fabric worker (standalone semantics; reported via /v1/worker/health)")
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *coordinator != "" && *workerMode {
		fmt.Fprintln(os.Stderr, "-coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxCacheBytes:  *cacheBytes,
		Logger:         log,
	}
	if *workerMode {
		cfg.Role = "worker"
	}
	if *coordinator != "" {
		urls := splitURLs(*coordinator)
		d, err := fabric.New(fabric.Options{Workers: urls, Logger: log})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		d.Start()
		defer d.Stop()
		cfg.Role = "coordinator"
		cfg.Dispatcher = d
		log.Info("fabric coordinator", "workers", urls)
	}

	srv := server.New(cfg)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// The profiler gets its own listener and mux so the debug surface is
		// never exposed on the service address. net/http/pprof registers on
		// http.DefaultServeMux; serve that.
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Error("pprof server failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("mpsimd listening", "addr", *addr, "workers", *workers, "timeout", timeout.String())

	select {
	case err := <-errc:
		log.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		log.Info("shutdown signal received")
	}

	// Graceful drain: in-flight simulations observe their request contexts
	// being canceled by Shutdown's deadline expiring below.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "error", err)
		os.Exit(1)
	}
	log.Info("mpsimd stopped")
}

// newLogger builds the process logger from the -log-format and -log-level
// flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}
