// Command mpsimd serves the simulation suite over HTTP/JSON: single jobs,
// fan-out sweeps, and registry enumeration, with a bounded worker pool and a
// content-addressed result cache.
//
//	mpsimd -addr :8080
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/run -d '{"workload":"mcf","model":"multipass"}'
//
// See EXPERIMENTS.md for the endpoint reference and a sweep example
// reproducing Figure 7 over HTTP.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only behind -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"multipass/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-request simulation deadline (0 = none)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:        *workers,
		DefaultTimeout: *timeout,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// The profiler gets its own listener and mux so the debug surface is
		// never exposed on the service address. net/http/pprof registers on
		// http.DefaultServeMux; serve that.
		go func() {
			fmt.Fprintf(os.Stderr, "mpsimd pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mpsimd listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: in-flight simulations observe their request contexts
	// being canceled by Shutdown's deadline expiring below.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
