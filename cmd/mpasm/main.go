// Command mpasm assembles, disassembles, and runs programs in the
// simulator's textual assembly format.
//
//	mpasm build prog.mpasm prog.mpo     assemble to the binary format
//	mpasm dis prog.mpo                  disassemble
//	mpasm run prog.mpasm                interpret (reference semantics)
//	mpasm time prog.mpasm               run on every timing model
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"multipass/internal/arch"
	"multipass/internal/bench"
	"multipass/internal/isa"
	"multipass/internal/mem"
	"multipass/internal/sim"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		if len(os.Args) != 4 {
			usage()
		}
		err = build(os.Args[2], os.Args[3])
	case "dis":
		err = dis(os.Args[2])
	case "run":
		err = run(os.Args[2])
	case "time":
		err = timeAll(os.Args[2])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mpasm build <src.mpasm> <out.mpo> | dis <prog> | run <prog> | time <prog>")
	os.Exit(2)
}

// load reads either assembly (.mpasm) or binary (.mpo) programs.
func load(path string) (*isa.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".mpo") {
		var p isa.Program
		if err := p.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return &p, nil
	}
	return isa.Assemble(string(data))
}

func build(src, out string) error {
	p, err := load(src)
	if err != nil {
		return err
	}
	data, err := p.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func dis(path string) error {
	p, err := load(path)
	if err != nil {
		return err
	}
	fmt.Print(p.String())
	return nil
}

func run(path string) error {
	p, err := load(path)
	if err != nil {
		return err
	}
	res, err := arch.Run(p, arch.NewMemory(), 100_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("retired %d instructions (%d loads, %d stores, %d branches)\n",
		res.State.Retired, res.Loads, res.Stores, res.Branches)
	// Print the non-zero integer registers as the program's "output".
	for i := 1; i < isa.NumIntRegs; i++ {
		if v := res.State.RF.Read(isa.IntReg(i)); v != 0 {
			fmt.Printf("  r%d = %d (%#x)\n", i, v.Uint32(), v.Uint32())
		}
	}
	return nil
}

func timeAll(path string) error {
	p, err := load(path)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tcycles\tIPC\tload-stall%")
	for _, name := range []bench.ModelName{"inorder", "runahead", "multipass", "ooo"} {
		m, err := bench.NewMachine(name, mem.BaseConfig())
		if err != nil {
			return err
		}
		res, err := m.Run(context.Background(), p, arch.NewMemory())
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		s := &res.Stats
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.1f%%\n", name, s.Cycles, s.IPC(),
			100*float64(s.Cat[sim.StallLoad])/float64(s.Cycles))
	}
	return tw.Flush()
}
