package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResolveOutPathRefusesSilentOverwrite pins the guard: an untagged,
// unforced run must not clobber an existing snapshot for the same date, and
// the error must tell the operator both ways out.
func TestResolveOutPathRefusesSilentOverwrite(t *testing.T) {
	dir := t.TempDir()
	existing := filepath.Join(dir, "BENCH_2026-08-08.json")
	if err := os.WriteFile(existing, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := resolveOutPath(dir, "2026-08-08", "", false)
	if err == nil {
		t.Fatal("resolveOutPath overwrote an existing untagged snapshot without -force")
	}
	if !strings.Contains(err.Error(), "-tag") || !strings.Contains(err.Error(), "-force") {
		t.Errorf("error %q should mention both -tag and -force", err)
	}

	// -force allows the overwrite explicitly.
	path, err := resolveOutPath(dir, "2026-08-08", "", true)
	if err != nil {
		t.Fatalf("resolveOutPath with force: %v", err)
	}
	if path != existing {
		t.Errorf("forced path = %q, want %q", path, existing)
	}

	// A tag produces a distinct file, so no guard applies even when the
	// tagged file itself exists (tags are an explicit namespace choice).
	tagged, err := resolveOutPath(dir, "2026-08-08", "pgo", false)
	if err != nil {
		t.Fatalf("resolveOutPath with tag: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_2026-08-08-pgo.json"); tagged != want {
		t.Errorf("tagged path = %q, want %q", tagged, want)
	}
	if err := os.WriteFile(tagged, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveOutPath(dir, "2026-08-08", "pgo", false); err != nil {
		t.Errorf("tagged run refused despite explicit tag: %v", err)
	}
}

func TestResolveOutPathFreshDate(t *testing.T) {
	dir := t.TempDir()
	path, err := resolveOutPath(dir, "2026-08-09", "", false)
	if err != nil {
		t.Fatalf("resolveOutPath on a fresh date: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_2026-08-09.json"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
}
