package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnap writes a minimal v2 snapshot with the given kernel/model cells
// (all at the same throughput so ratios are 1.0 and the geomean gate passes).
func writeSnap(t *testing.T, dir, name string, cells map[string][]string) string {
	t.Helper()
	s := snapshot{SchemaVersion: 2, Skip: "on", Scale: 1, Hier: "base"}
	for kernel, models := range cells {
		ks := kernelSnap{Kernel: kernel}
		for _, m := range models {
			ks.Models = append(ks.Models, modelSnap{Model: m, SimCyclesPerSec: 1e6, Cycles: 1000, Reps: 1})
		}
		s.Kernels = append(s.Kernels, ks)
	}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureCompare runs runCompare with stdout captured, so tests can assert
// on the dropped-cell reporting as well as the verdict.
func captureCompare(t *testing.T, oldPath, newPath string, tolerance float64, allowPartial bool) (bool, error, string) {
	t.Helper()
	saved := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ok, cerr := runCompare(oldPath, newPath, tolerance, allowPartial)
	os.Stdout = saved
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return ok, cerr, string(out)
}

// TestCompareReportsDroppedCells pins the partial-snapshot contract: cells
// present in only one snapshot must be reported per side and fail the
// comparison unless -allow-partial. The old behavior — silently comparing
// the intersection and passing — let a snapshot predating a model (or taken
// after a kernel was removed) green-light a shrunken grid.
func TestCompareReportsDroppedCells(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string][]string{
		"mcf": {"inorder", "ooo"},
		"gap": {"inorder"},
	})
	newPath := writeSnap(t, dir, "new.json", map[string][]string{
		"mcf": {"inorder", "cgooo"},
	})

	ok, err, out := captureCompare(t, oldPath, newPath, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("partial comparison passed without -allow-partial")
	}
	for _, want := range []string{"mcf/ooo", "gap/inorder", "mcf/cgooo", "dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("output does not report dropped cell %q:\n%s", want, out)
		}
	}
	// Per-side attribution: each file's report line names only its own cells.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "old.json") && strings.Contains(line, "mcf/cgooo") {
			t.Errorf("cell only in new.json attributed to old.json: %q", line)
		}
		if strings.Contains(line, "new.json") && strings.Contains(line, "mcf/ooo") {
			t.Errorf("cell only in old.json attributed to new.json: %q", line)
		}
	}

	// -allow-partial accepts the same pair but still reports the drops.
	ok, err, out = captureCompare(t, oldPath, newPath, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("-allow-partial still failed a healthy intersection")
	}
	if !strings.Contains(out, "mcf/ooo") || !strings.Contains(out, "mcf/cgooo") {
		t.Errorf("-allow-partial stopped reporting dropped cells:\n%s", out)
	}
}

// TestCompareFullGridPasses: identical grids compare cleanly with no partial
// verdict and no dropped-cell noise.
func TestCompareFullGridPasses(t *testing.T) {
	dir := t.TempDir()
	grid := map[string][]string{"mcf": {"inorder", "ooo", "cgooo"}}
	oldPath := writeSnap(t, dir, "old.json", grid)
	newPath := writeSnap(t, dir, "new.json", grid)
	ok, err, out := captureCompare(t, oldPath, newPath, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("identical grids failed:\n%s", out)
	}
	if strings.Contains(out, "dropped") || strings.Contains(out, "PARTIAL") {
		t.Errorf("full-grid comparison reported drops:\n%s", out)
	}
}

// TestCompareDisjointGridsError: no common cells is a hard error, not a
// passing comparison of nothing.
func TestCompareDisjointGridsError(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string][]string{"mcf": {"inorder"}})
	newPath := writeSnap(t, dir, "new.json", map[string][]string{"gap": {"ooo"}})
	_, err, _ := captureCompare(t, oldPath, newPath, 0.05, true)
	if err == nil {
		t.Fatal("disjoint snapshots compared without error")
	}
	if !strings.Contains(err.Error(), "no common") {
		t.Errorf("unexpected error %v", err)
	}
}

// TestResolveOutPathRefusesSilentOverwrite pins the guard: an untagged,
// unforced run must not clobber an existing snapshot for the same date, and
// the error must tell the operator both ways out.
func TestResolveOutPathRefusesSilentOverwrite(t *testing.T) {
	dir := t.TempDir()
	existing := filepath.Join(dir, "BENCH_2026-08-08.json")
	if err := os.WriteFile(existing, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := resolveOutPath(dir, "2026-08-08", "", false)
	if err == nil {
		t.Fatal("resolveOutPath overwrote an existing untagged snapshot without -force")
	}
	if !strings.Contains(err.Error(), "-tag") || !strings.Contains(err.Error(), "-force") {
		t.Errorf("error %q should mention both -tag and -force", err)
	}

	// -force allows the overwrite explicitly.
	path, err := resolveOutPath(dir, "2026-08-08", "", true)
	if err != nil {
		t.Fatalf("resolveOutPath with force: %v", err)
	}
	if path != existing {
		t.Errorf("forced path = %q, want %q", path, existing)
	}

	// A tag produces a distinct file, so no guard applies even when the
	// tagged file itself exists (tags are an explicit namespace choice).
	tagged, err := resolveOutPath(dir, "2026-08-08", "pgo", false)
	if err != nil {
		t.Fatalf("resolveOutPath with tag: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_2026-08-08-pgo.json"); tagged != want {
		t.Errorf("tagged path = %q, want %q", tagged, want)
	}
	if err := os.WriteFile(tagged, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveOutPath(dir, "2026-08-08", "pgo", false); err != nil {
		t.Errorf("tagged run refused despite explicit tag: %v", err)
	}
}

func TestResolveOutPathFreshDate(t *testing.T) {
	dir := t.TempDir()
	path, err := resolveOutPath(dir, "2026-08-09", "", false)
	if err != nil {
		t.Fatalf("resolveOutPath on a fresh date: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_2026-08-09.json"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
}
