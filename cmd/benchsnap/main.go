// Command benchsnap snapshots simulator throughput: it runs every timing
// model over one or more compiled kernels, measures simulated cycles per wall
// second and allocations per simulated cycle, and writes the result to
// BENCH_<date><tag>.json so performance regressions leave a dated record next
// to the repo. It also compares two snapshots, as a ratio table with a
// geomean regression gate, for use as a CI check.
//
//	benchsnap                                  # mcf, scale 1, 3 reps
//	benchsnap -kernels all -reps 1 -tag -skip  # full matrix, BENCH_<date>-skip.json
//	benchsnap -kernels gzip,mcf -skip=false    # skip-off timing
//	benchsnap -compare old.json new.json       # ratio table; exit 1 on regression
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"multipass/internal/arch"
	"multipass/internal/bench"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// funcInterpModel is the pseudo-model row measuring the superblock functional
// interpreter (the fast-forward engine behind checkpoint sampling): Cycles
// holds the retired instruction count and SimCyclesPerSec holds retired
// functional instructions per wall second, so the -compare ratio gate covers
// the fast-forward path like any timing model cell.
const funcInterpModel = "funcinterp"

// funcInterpLimit mirrors the dynamic instruction budget the bench harness
// uses for functional runs.
const funcInterpLimit = 1 << 22

// modelSnap is one model's measurement on one kernel.
type modelSnap struct {
	Model           string  `json:"model"`
	Cycles          uint64  `json:"cycles_per_run"`
	Reps            int     `json:"reps"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	AllocsPerRun    float64 `json:"allocs_per_run"`
	AllocsPerCycle  float64 `json:"allocs_per_cycle"`
}

// kernelSnap is one kernel's measurements across models.
type kernelSnap struct {
	Kernel string      `json:"kernel"`
	Models []modelSnap `json:"models"`
}

// snapshot is the file schema. Version 2 adds multi-kernel Kernels plus the
// environment fields (goos, cpu, skip) needed to tell whether two snapshots
// are comparable at all; version 1 files (single flat Kernel/Models) are
// still read by -compare.
type snapshot struct {
	SchemaVersion   int          `json:"schema_version"`
	Date            string       `json:"date"`
	GoVersion       string       `json:"go_version"`
	GOOS            string       `json:"goos"`
	GOARCH          string       `json:"goarch"`
	CPU             string       `json:"cpu,omitempty"`
	Skip            string       `json:"skip"` // "on" | "off"
	Scale           int          `json:"scale"`
	Hier            string       `json:"hier"`
	Kernels         []kernelSnap `json:"kernels"`
	GeomeanCyclesPS float64      `json:"geomean_simcycles_per_sec"`
	// SampleInterval is the interval-sampling checkpoint spacing in retired
	// instructions; zero (and absent, for older files) means monolithic runs.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	// SamplePeriod > 1 means sparse SMARTS measurement (every Nth interval
	// simulated, cycles extrapolated); zero or absent means full coverage.
	SamplePeriod uint64 `json:"sample_period,omitempty"`

	// Legacy v1 fields, populated only when reading old files.
	Kernel       string      `json:"kernel,omitempty"`
	LegacyModels []modelSnap `json:"models,omitempty"`
}

var allModels = []bench.ModelName{
	bench.MInorder, bench.MRunahead, bench.MMultipass, bench.MOOO, bench.MOOORealistc,
	bench.MCGOoO,
}

func main() {
	kernels := flag.String("kernels", "mcf", `comma-separated kernels to measure, or "all" for the full suite`)
	scale := flag.Int("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "measured runs per model")
	outDir := flag.String("out", ".", "directory for BENCH_<date><tag>.json")
	models := flag.String("models", "", "comma-separated model subset (default: all)")
	tag := flag.String("tag", "", "suffix for the snapshot filename: BENCH_<date>-<tag>.json")
	skip := flag.Bool("skip", true, "idle-cycle fast-forwarding during measured runs")
	force := flag.Bool("force", false, "overwrite an existing snapshot file for today's date")
	sample := flag.Uint64("sample", 0, "interval sampling: checkpoint every N retired instructions and simulate intervals in parallel (0 = monolithic runs)")
	par := flag.Int("par", 0, "with -sample: concurrent interval workers (0 = GOMAXPROCS)")
	warmup := flag.Uint64("warmup", 0, "with -sample: detailed warm-up instructions before each interval, stats discarded (0 = interval/4)")
	period := flag.Uint64("period", 1, "with -sample: simulate every Nth interval and extrapolate the rest (SMARTS sparse measurement; 1 = every interval)")
	compare := flag.Bool("compare", false, "compare two snapshot files (positional: old.json new.json) instead of measuring")
	tolerance := flag.Float64("tolerance", 0.05, "with -compare: allowed geomean regression fraction before exiting nonzero")
	allowPartial := flag.Bool("allow-partial", false, "with -compare: accept snapshots whose kernel x model grids differ (uncompared cells are still reported)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchsnap: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		ok, err := runCompare(flag.Arg(0), flag.Arg(1), *tolerance, *allowPartial)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	scfg := sim.SampleConfig{Interval: *sample, Warmup: *warmup, Workers: *par, Period: *period}
	if err := run(*kernels, *scale, *reps, *outDir, *models, *tag, *skip, *force, scfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func kernelList(spec string) ([]workload.Workload, error) {
	if spec == "all" {
		return workload.All(), nil
	}
	var ws []workload.Workload
	for _, name := range strings.Split(spec, ",") {
		w, ok := workload.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", name)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// cpuModel extracts the CPU model string, best effort: /proc/cpuinfo "model
// name" on Linux, empty elsewhere. Its job is detecting cross-machine
// comparisons, so absence is acceptable and mismatch is a warning.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

func skipLabel(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// resolveOutPath returns the snapshot path for the run, refusing to clobber
// an existing file: a second untagged run on the same day would silently
// replace the day's record, so it must be distinguished with -tag or
// explicitly forced.
func resolveOutPath(outDir, date, tag string, force bool) (string, error) {
	name := "BENCH_" + date
	if tag != "" {
		name += "-" + tag
	}
	path := filepath.Join(outDir, name+".json")
	if tag == "" && !force {
		if _, err := os.Stat(path); err == nil {
			return "", fmt.Errorf("%s already exists; pass -tag to distinguish this run or -force to overwrite", path)
		}
	}
	return path, nil
}

func run(kernels string, scale, reps int, outDir, models, tag string, skipOn, force bool, scfg sim.SampleConfig) error {
	ws, err := kernelList(kernels)
	if err != nil {
		return err
	}
	names := allModels
	if models != "" {
		names = nil
		for _, m := range strings.Split(models, ",") {
			names = append(names, bench.ModelName(strings.TrimSpace(m)))
		}
	}
	if reps < 1 {
		reps = 1
	}

	ctx := context.Background()
	hier := mem.BaseConfig()
	opts := sim.ModelOptions{Hier: hier, DisableSkip: !skipOn}

	snap := snapshot{
		SchemaVersion:  2,
		Date:           time.Now().UTC().Format("2006-01-02"),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPU:            cpuModel(),
		Skip:           skipLabel(skipOn),
		Scale:          scale,
		Hier:           "base",
		SampleInterval: scfg.Interval,
	}
	if scfg.Interval > 0 && scfg.Period > 1 {
		snap.SamplePeriod = scfg.Period
	}

	// Resolve the output path up front so a refused overwrite fails before
	// the measurement, not after it.
	path, err := resolveOutPath(outDir, snap.Date, tag, force)
	if err != nil {
		return err
	}

	runOne := func(pr *bench.Prepared, name bench.ModelName) (*sim.Result, error) {
		if scfg.Interval > 0 {
			return pr.RunSampled(ctx, name, opts, scfg)
		}
		return pr.RunOpts(ctx, name, opts)
	}

	logGeo := 0.0
	cells := 0
	for _, w := range ws {
		pr, err := bench.Prepare(w, scale)
		if err != nil {
			return err
		}
		ks := kernelSnap{Kernel: w.Name}
		for _, name := range names {
			// Warm-up run: touch every lazily-grown structure and the page
			// cache so the measured reps see steady state.
			if _, err := runOne(pr, name); err != nil {
				return fmt.Errorf("%s/%s: %w", w.Name, name, err)
			}

			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			var cycles, total uint64
			for i := 0; i < reps; i++ {
				res, err := runOne(pr, name)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", w.Name, name, err)
				}
				cycles = res.Stats.Cycles
				total += res.Stats.Cycles
			}
			wall := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms1)

			allocsPerRun := float64(ms1.Mallocs-ms0.Mallocs) / float64(reps)
			cps := float64(total) / wall
			ks.Models = append(ks.Models, modelSnap{
				Model:           string(name),
				Cycles:          cycles,
				Reps:            reps,
				WallSeconds:     wall,
				SimCyclesPerSec: cps,
				AllocsPerRun:    allocsPerRun,
				AllocsPerCycle:  allocsPerRun / float64(cycles),
			})
			logGeo += math.Log(cps)
			cells++
			fmt.Printf("%-8s %-16s %12.0f simcycles/s  %8.0f allocs/run  %.6f allocs/cycle\n",
				w.Name, name, cps, allocsPerRun, allocsPerRun/float64(cycles))
		}
		fi, err := measureFuncInterp(pr, reps)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", w.Name, funcInterpModel, err)
		}
		ks.Models = append(ks.Models, fi)
		logGeo += math.Log(fi.SimCyclesPerSec)
		cells++
		fmt.Printf("%-8s %-16s %12.0f funcinsts/s  %8.0f allocs/run  %.6f allocs/inst\n",
			w.Name, funcInterpModel, fi.SimCyclesPerSec, fi.AllocsPerRun, fi.AllocsPerCycle)
		snap.Kernels = append(snap.Kernels, ks)
	}
	snap.GeomeanCyclesPS = math.Exp(logGeo / float64(cells))
	fmt.Printf("geomean %12.0f simcycles/s (%d kernel x model cells, skip %s)\n",
		snap.GeomeanCyclesPS, cells, snap.Skip)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// measureFuncInterp times the superblock interpreter over the prepared
// kernel, with the same warm-up-then-measure discipline as the timing-model
// cells. The program is pre-decoded once outside the timed region (the
// design point: sim decodes once and reuses across every interval).
func measureFuncInterp(pr *bench.Prepared, reps int) (modelSnap, error) {
	sb := arch.NewSBProgram(pr.P)
	if _, err := sb.Run(pr.Image.Clone(), funcInterpLimit); err != nil {
		return modelSnap{}, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var insts, total uint64
	var wall time.Duration
	for i := 0; i < reps; i++ {
		img := pr.Image.Clone()
		start := time.Now()
		res, err := sb.Run(img, funcInterpLimit)
		wall += time.Since(start)
		if err != nil {
			return modelSnap{}, err
		}
		insts = res.State.Retired
		total += res.State.Retired
	}
	runtime.ReadMemStats(&ms1)

	allocsPerRun := float64(ms1.Mallocs-ms0.Mallocs) / float64(reps)
	return modelSnap{
		Model:           funcInterpModel,
		Cycles:          insts,
		Reps:            reps,
		WallSeconds:     wall.Seconds(),
		SimCyclesPerSec: float64(total) / wall.Seconds(),
		AllocsPerRun:    allocsPerRun,
		AllocsPerCycle:  allocsPerRun / float64(insts),
	}, nil
}

// readSnapshot loads a snapshot file, normalizing legacy v1 files (flat
// Kernel/Models, no environment fields) into the v2 shape.
func readSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.SchemaVersion == 0 {
		// v1: single kernel, skip mode predates the knob (always off).
		s.SchemaVersion = 1
		s.Kernels = []kernelSnap{{Kernel: s.Kernel, Models: s.LegacyModels}}
		if s.Skip == "" {
			s.Skip = "off"
		}
	}
	return &s, nil
}

// envWarnings lists environment mismatches that make a throughput comparison
// between the two snapshots unreliable.
func envWarnings(old, new *snapshot) []string {
	var warns []string
	mismatch := func(field, a, b string) {
		if a != b && a != "" && b != "" {
			warns = append(warns, fmt.Sprintf("%s differs: %q vs %q", field, a, b))
		}
	}
	mismatch("goos", old.GOOS, new.GOOS)
	mismatch("goarch", old.GOARCH, new.GOARCH)
	mismatch("cpu", old.CPU, new.CPU)
	mismatch("go version", old.GoVersion, new.GoVersion)
	mismatch("skip mode", old.Skip, new.Skip)
	if old.Scale != new.Scale {
		warns = append(warns, fmt.Sprintf("scale differs: %d vs %d", old.Scale, new.Scale))
	}
	if old.SampleInterval != new.SampleInterval {
		warns = append(warns, fmt.Sprintf("sample interval differs: %d vs %d", old.SampleInterval, new.SampleInterval))
	}
	if old.SamplePeriod != new.SamplePeriod {
		warns = append(warns, fmt.Sprintf("sample period differs: %d vs %d", old.SamplePeriod, new.SamplePeriod))
	}
	return warns
}

// cellGrid flattens a snapshot into kernel/model -> simcycles/s, keeping
// first-seen key order for deterministic reporting.
func cellGrid(s *snapshot) (map[string]float64, []string) {
	cells := make(map[string]float64)
	var keys []string
	for _, ks := range s.Kernels {
		for _, m := range ks.Models {
			k := ks.Kernel + "/" + m.Model
			if _, dup := cells[k]; !dup {
				keys = append(keys, k)
			}
			cells[k] = m.SimCyclesPerSec
		}
	}
	return cells, keys
}

// runCompare prints a per-cell ratio table (new/old simcycles/s) for every
// kernel x model pair present in both snapshots and gates on the geomean
// ratio: below 1-tolerance it reports a regression and returns false.
//
// Cells present in only one snapshot cannot be compared, but they must not
// vanish silently: a snapshot taken before a model or kernel was added (or
// after one was removed) would otherwise pass the gate while measuring a
// shrunken grid. Every such cell is reported per side, and unless
// allowPartial is set, a partial intersection fails the comparison.
func runCompare(oldPath, newPath string, tolerance float64, allowPartial bool) (bool, error) {
	old, err := readSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	cur, err := readSnapshot(newPath)
	if err != nil {
		return false, err
	}

	for _, w := range envWarnings(old, cur) {
		fmt.Printf("warning: %s\n", w)
	}

	oldCells, oldKeys := cellGrid(old)
	newCells, newKeys := cellGrid(cur)
	var onlyOld, onlyNew []string
	for _, k := range oldKeys {
		if _, ok := newCells[k]; !ok {
			onlyOld = append(onlyOld, k)
		}
	}
	for _, k := range newKeys {
		if _, ok := oldCells[k]; !ok {
			onlyNew = append(onlyNew, k)
		}
	}

	fmt.Printf("%-8s %-16s %14s %14s %8s\n", "kernel", "model", "old cyc/s", "new cyc/s", "ratio")
	logGeo := 0.0
	n := 0
	for _, ks := range cur.Kernels {
		for _, m := range ks.Models {
			oldCPS, ok := oldCells[ks.Kernel+"/"+m.Model]
			if !ok {
				continue
			}
			if oldCPS <= 0 || m.SimCyclesPerSec <= 0 {
				fmt.Printf("%-8s %-16s skipped: nonpositive throughput (%g vs %g)\n",
					ks.Kernel, m.Model, oldCPS, m.SimCyclesPerSec)
				continue
			}
			ratio := m.SimCyclesPerSec / oldCPS
			fmt.Printf("%-8s %-16s %14.0f %14.0f %7.2fx\n",
				ks.Kernel, m.Model, oldCPS, m.SimCyclesPerSec, ratio)
			logGeo += math.Log(ratio)
			n++
		}
	}
	if n == 0 {
		return false, fmt.Errorf("no common kernel/model cells between %s and %s", oldPath, newPath)
	}
	geo := math.Exp(logGeo / float64(n))
	fmt.Printf("geomean ratio %.3fx over %d cells (tolerance %.0f%%)\n", geo, n, 100*tolerance)

	partial := len(onlyOld)+len(onlyNew) > 0
	if len(onlyOld) > 0 {
		fmt.Printf("%d cells only in %s (dropped from comparison): %s\n",
			len(onlyOld), oldPath, strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Printf("%d cells only in %s (dropped from comparison): %s\n",
			len(onlyNew), newPath, strings.Join(onlyNew, ", "))
	}

	ok := true
	if geo < 1-tolerance {
		fmt.Printf("REGRESSION: geomean %.3fx below %.3fx floor\n", geo, 1-tolerance)
		ok = false
	}
	if partial && !allowPartial {
		fmt.Printf("PARTIAL: %d compared cells cover neither grid fully (%d old, %d new); pass -allow-partial to accept\n",
			n, len(oldKeys), len(newKeys))
		ok = false
	}
	return ok, nil
}
