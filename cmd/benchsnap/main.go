// Command benchsnap snapshots simulator throughput: it runs every timing
// model over a compiled kernel, measures simulated cycles per wall second and
// allocations per simulated cycle, and writes the result to BENCH_<date>.json
// so performance regressions leave a dated record next to the repo.
//
//	benchsnap                       # mcf, scale 1, 3 reps, BENCH_YYYY-MM-DD.json
//	benchsnap -kernel crafty -reps 5 -out /tmp
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"multipass/internal/bench"
	"multipass/internal/mem"
	"multipass/internal/workload"
)

// modelSnap is one model's measurement.
type modelSnap struct {
	Model           string  `json:"model"`
	Cycles          uint64  `json:"cycles_per_run"`
	Reps            int     `json:"reps"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	AllocsPerRun    float64 `json:"allocs_per_run"`
	AllocsPerCycle  float64 `json:"allocs_per_cycle"`
}

// snapshot is the file schema.
type snapshot struct {
	Date            string      `json:"date"`
	GoVersion       string      `json:"go_version"`
	GOARCH          string      `json:"goarch"`
	Kernel          string      `json:"kernel"`
	Scale           int         `json:"scale"`
	Hier            string      `json:"hier"`
	Models          []modelSnap `json:"models"`
	GeomeanCyclesPS float64     `json:"geomean_simcycles_per_sec"`
}

var allModels = []bench.ModelName{
	bench.MInorder, bench.MRunahead, bench.MMultipass, bench.MOOO, bench.MOOORealistc,
}

func main() {
	kernel := flag.String("kernel", "mcf", "workload kernel to measure")
	scale := flag.Int("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "measured runs per model")
	outDir := flag.String("out", ".", "directory for BENCH_<date>.json")
	models := flag.String("models", "", "comma-separated model subset (default: all)")
	flag.Parse()

	if err := run(*kernel, *scale, *reps, *outDir, *models); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(kernel string, scale, reps int, outDir, models string) error {
	w, ok := workload.ByName(kernel)
	if !ok {
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	names := allModels
	if models != "" {
		names = nil
		for _, m := range strings.Split(models, ",") {
			names = append(names, bench.ModelName(strings.TrimSpace(m)))
		}
	}
	if reps < 1 {
		reps = 1
	}

	pr, err := bench.Prepare(w, scale)
	if err != nil {
		return err
	}
	ctx := context.Background()
	hier := mem.BaseConfig()

	snap := snapshot{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Kernel:    kernel,
		Scale:     scale,
		Hier:      "base",
	}

	logGeo := 0.0
	for _, name := range names {
		// Warm-up run: touch every lazily-grown structure and the page
		// cache so the measured reps see steady state.
		if _, err := pr.Run(ctx, name, hier); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}

		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		var cycles, total uint64
		for i := 0; i < reps; i++ {
			res, err := pr.Run(ctx, name, hier)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			cycles = res.Stats.Cycles
			total += res.Stats.Cycles
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)

		allocsPerRun := float64(ms1.Mallocs-ms0.Mallocs) / float64(reps)
		cps := float64(total) / wall
		snap.Models = append(snap.Models, modelSnap{
			Model:           string(name),
			Cycles:          cycles,
			Reps:            reps,
			WallSeconds:     wall,
			SimCyclesPerSec: cps,
			AllocsPerRun:    allocsPerRun,
			AllocsPerCycle:  allocsPerRun / float64(cycles),
		})
		logGeo += math.Log(cps)
		fmt.Printf("%-16s %12.0f simcycles/s  %8.0f allocs/run  %.6f allocs/cycle\n",
			name, cps, allocsPerRun, allocsPerRun/float64(cycles))
	}
	snap.GeomeanCyclesPS = math.Exp(logGeo / float64(len(snap.Models)))
	fmt.Printf("geomean          %12.0f simcycles/s\n", snap.GeomeanCyclesPS)

	path := filepath.Join(outDir, "BENCH_"+snap.Date+".json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
