// Command promcheck validates a Prometheus text-format exposition read
// from stdin: every sample must belong to a declared family, no family or
// series may repeat, and every value must parse. CI pipes a live server's
// /metrics through it:
//
//	curl -fsS localhost:8080/metrics | promcheck
//
// Exit status 0 means the exposition is well-formed; 1 reports the first
// malformation on stderr.
package main

import (
	"fmt"
	"os"

	"multipass/internal/obs"
)

func main() {
	st, err := obs.Lint(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d families, %d samples)\n", st.Families, st.Samples)
}
