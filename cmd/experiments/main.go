// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic workload suite:
//
//	experiments -fig 6          Figure 6  (normalized cycles + stall breakdown)
//	experiments -fig 7          Figure 7  (speedups under three hierarchies)
//	experiments -fig 8          Figure 8  (regrouping / restart ablations)
//	experiments -table 1        Table 1   (power ratios)
//	experiments -extras         §5.2 realistic OOO and §5.4 runahead comparisons
//	experiments -sampling       interval-sampling error table + speedup curve (not in -all; runs a scale-128 kernel)
//	experiments -all            everything (the default)
//	experiments -scale 4        longer runs (higher fidelity, more time)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"multipass/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (6, 7 or 8)")
	table := flag.Int("table", 0, "table to reproduce (1)")
	extras := flag.Bool("extras", false, "run the realistic-OOO and runahead comparisons")
	fiveWay := flag.Bool("five-way", false, "energy/performance comparison of all latency-tolerant machines incl. cgooo")
	restart := flag.Bool("restart-study", false, "compare compiler vs hardware advance restart (paper §3.3 footnote 1)")
	sweepFlag := flag.String("sweep", "", "design-choice sweep: iq | asc")
	sampling := flag.Bool("sampling", false, "measure interval sampling vs monolithic (error table + wall-clock curve)")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 2, "workload scale factor (dynamic length multiplier)")
	chart := flag.Bool("chart", false, "render figures as ASCII bar charts")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	flag.Parse()

	// Ctrl-C cancels in-flight simulations promptly instead of waiting for
	// the current figure to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *fig == 0 && *table == 0 && !*extras && !*restart && *sweepFlag == "" && !*sampling && !*fiveWay {
		*all = true
	}

	emit := func(name, body string, start time.Time) {
		fmt.Printf("=== %s (scale %d, %.1fs) ===\n%s\n", name, *scale, time.Since(start).Seconds(), body)
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
		os.Exit(1)
	}

	render := func(r interface {
		Render() string
	}) string {
		if *jsonOut {
			data, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				fail("json", err)
			}
			return string(data)
		}
		if *chart {
			if c, ok := r.(interface{ Chart() string }); ok {
				return c.Chart()
			}
		}
		return r.Render()
	}

	if *all || *fig == 6 {
		start := time.Now()
		r, err := bench.Figure6(ctx, *scale)
		if err != nil {
			fail("Figure 6", err)
		}
		emit("Figure 6", render(r), start)
	}
	if *all || *fig == 7 {
		start := time.Now()
		r, err := bench.Figure7(ctx, *scale)
		if err != nil {
			fail("Figure 7", err)
		}
		emit("Figure 7", render(r), start)
	}
	if *all || *fig == 8 {
		start := time.Now()
		r, err := bench.Figure8(ctx, *scale)
		if err != nil {
			fail("Figure 8", err)
		}
		emit("Figure 8", render(r), start)
	}
	if *all || *table == 1 {
		start := time.Now()
		r, err := bench.Table1(ctx, *scale)
		if err != nil {
			fail("Table 1", err)
		}
		emit("Table 1", render(r), start)
	}
	if *all || *extras {
		start := time.Now()
		r, err := bench.Extras(ctx, *scale)
		if err != nil {
			fail("Extras", err)
		}
		emit("Extra comparisons (§5.2, §5.4)", render(r), start)
	}
	if *all || *fiveWay {
		start := time.Now()
		r, err := bench.FiveWay(ctx, *scale)
		if err != nil {
			fail("Five-way comparison", err)
		}
		emit("Five-way energy/performance comparison", render(r), start)
	}
	if *all || *restart {
		start := time.Now()
		r, err := bench.RestartStudy(ctx, *scale)
		if err != nil {
			fail("Restart study", err)
		}
		emit("Restart mechanisms (§3.3 footnote 1)", r.Render(), start)
	}
	// Deliberately not part of -all: the speedup curve runs a scale-128
	// kernel monolithically, which dwarfs every other experiment here.
	if *sampling {
		start := time.Now()
		r, err := bench.SamplingStudy(ctx, *scale)
		if err != nil {
			fail("Sampling study", err)
		}
		emit("Interval sampling vs monolithic", render(r), start)
	}
	if *all || *sweepFlag == "iq" {
		start := time.Now()
		r, err := bench.SweepIQ(ctx, *scale, []int{24, 64, 128, 256, 512})
		if err != nil {
			fail("IQ sweep", err)
		}
		emit("Instruction-queue size sweep", r.Render(), start)
	}
	if *all || *sweepFlag == "asc" {
		start := time.Now()
		r, err := bench.SweepASC(ctx, *scale, []int{8, 16, 64, 256})
		if err != nil {
			fail("ASC sweep", err)
		}
		emit("Advance-store-cache size sweep", r.Render(), start)
	}
}
