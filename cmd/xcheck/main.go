// Command xcheck runs the cross-model differential checker: seeded random
// EPIC programs through the architectural oracle and every timing model,
// asserting functional equivalence and timing invariants.
//
//	xcheck -n 500 -seed 1
//	xcheck -n 100 -models inorder,multipass -hier config2
//	xcheck -n 200 -inject            # demonstrate bug detection + shrinking
//
// Failing programs are shrunk (unless -shrink=false) and written as
// assemblable repros into the corpus directory; exit status is nonzero if
// any seed fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/xcheck"
)

func main() {
	n := flag.Int("n", 100, "number of seeds to check")
	seed0 := flag.Uint64("seed", 1, "first seed")
	models := flag.String("models", "", "comma-separated model names (default: the canonical models; 'all' for every registered model)")
	hier := flag.String("hier", "base", "cache hierarchy: "+strings.Join(mem.ConfigNames(), " | "))
	shrink := flag.Bool("shrink", true, "minimize failing programs before reporting")
	corpus := flag.String("corpus", "internal/xcheck/testdata/corpus", "directory for failure repros")
	inject := flag.Bool("inject", false, "also check the deliberately broken "+xcheck.BuggyModelName+" model (must fail)")
	skipdiff := flag.Bool("skipdiff", false, "run every model twice (idle-cycle skipping on and off) and report any stats or state divergence")
	oracle := flag.String("oracle", "superblock", "reference interpreter: superblock | stepwise")
	quiet := flag.Bool("q", false, "suppress per-progress output")
	flag.Parse()

	hc, ok := mem.ConfigByName(*hier)
	if !ok {
		fmt.Fprintf(os.Stderr, "xcheck: unknown hierarchy %q (have %v)\n", *hier, mem.ConfigNames())
		os.Exit(2)
	}
	opts := xcheck.Options{Hier: hc, SkipDiff: *skipdiff}
	switch *oracle {
	case "superblock":
	case "stepwise":
		opts.StepwiseOracle = true
	default:
		fmt.Fprintf(os.Stderr, "xcheck: unknown oracle %q (have superblock | stepwise)\n", *oracle)
		os.Exit(2)
	}
	switch *models {
	case "":
	case "all":
		opts.Models = sim.Names()
	default:
		for _, name := range strings.Split(*models, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Models = append(opts.Models, name)
			}
		}
	}
	if *inject {
		xcheck.RegisterBuggy(sim.DefaultRegistry)
		if opts.Models == nil {
			opts.Models = xcheck.CanonicalModels
		}
		opts.Models = append(append([]string(nil), opts.Models...), xcheck.BuggyModelName)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	progress := func(done int, rep *xcheck.Report) {
		if *quiet {
			return
		}
		if rep.Failed() {
			fmt.Printf("seed %d: FAIL (%d failures)\n", rep.Seed, len(rep.Failures))
		} else if done%100 == 0 {
			fmt.Printf("%d/%d seeds ok\n", done, *n)
		}
	}
	sum, err := xcheck.Run(ctx, *n, *seed0, opts, *shrink, progress)
	if err != nil {
		fail(err)
	}

	modelList := opts.Models
	if modelList == nil {
		modelList = xcheck.CanonicalModels
	}
	if len(sum.Failed) == 0 {
		fmt.Printf("xcheck: %d seeds, %d models, zero divergences, zero invariant violations\n",
			sum.Checked, len(modelList))
		if *inject {
			fmt.Fprintln(os.Stderr, "xcheck: -inject was set but the buggy model was not caught")
			os.Exit(1)
		}
		return
	}

	for _, rep := range sum.Failed {
		fmt.Printf("\nseed %d: %d issue groups after shrinking\n", rep.Seed, len(xcheck.Groups(rep.Program)))
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
		if err := os.MkdirAll(*corpus, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*corpus, fmt.Sprintf("seed%d.asm", rep.Seed))
		if err := os.WriteFile(path, []byte(xcheck.ReproText(rep)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("  repro: %s\n", path)
	}
	if *inject && onlyBuggyFailed(sum.Failed) {
		fmt.Printf("\nxcheck: injected bug caught and shrunk as expected; real models clean\n")
		return
	}
	os.Exit(1)
}

// fail prints err with a single "xcheck:" prefix (library errors already
// carry one) and exits nonzero.
func fail(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "xcheck: ") {
		msg = "xcheck: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(2)
}

// onlyBuggyFailed reports whether every failure involves the injected model,
// so -inject runs can distinguish "worked as intended" from a real bug.
func onlyBuggyFailed(reports []*xcheck.Report) bool {
	for _, rep := range reports {
		for _, f := range rep.Failures {
			if f.Model != xcheck.BuggyModelName {
				return false
			}
		}
	}
	return true
}
