// Command mpsim runs one benchmark kernel on one timing model and prints
// the cycle breakdown and model-specific statistics.
//
//	mpsim -w mcf -model multipass
//	mpsim -w art -model ooo -hier config2 -scale 4
//	mpsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"multipass/internal/bench"
	"multipass/internal/compile"
	"multipass/internal/core"
	"multipass/internal/mem"
	"multipass/internal/sim"
	"multipass/internal/workload"
)

// runTraced runs a multipass variant with the pipeline tracer attached.
func runTraced(ctx context.Context, name bench.ModelName, w workload.Workload, scale int, hc mem.HierConfig, disableSkip bool) (*sim.Result, error) {
	p, image, err := workload.Program(w, scale, compile.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Hier = hc
	cfg.DisableRegroup = name == bench.MNoRegroup
	cfg.DisableRestart = name == bench.MNoRestart
	cfg.DisableSkip = disableSkip
	cfg.Trace = core.NewTracer(os.Stderr)
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(ctx, p, image)
}

// isMultipass reports whether the named model is a multipass variant (the
// only models the pipeline tracer understands).
func isMultipass(model string) bool { return strings.HasPrefix(model, "multipass") }

func main() {
	wname := flag.String("w", "mcf", "workload name (see -list)")
	model := flag.String("model", "multipass", "timing model: "+strings.Join(sim.Names(), " | "))
	hier := flag.String("hier", "base", "cache hierarchy: "+strings.Join(mem.ConfigNames(), " | "))
	scale := flag.Int("scale", 1, "workload scale factor")
	list := flag.Bool("list", false, "list available workloads")
	trace := flag.Bool("trace", false, "stream multipass pipeline events to stderr (multipass models only)")
	jsonOut := flag.Bool("json", false, "emit the statistics as JSON")
	skip := flag.Bool("skip", true, "idle-cycle fast-forwarding; stats are byte-identical either way, -skip=false exists for validation and timing comparisons")
	sample := flag.Uint64("sample", 0, "interval sampling: checkpoint every N retired instructions and simulate intervals in parallel (0 = monolithic run)")
	par := flag.Int("par", 0, "with -sample: concurrent interval workers (0 = GOMAXPROCS)")
	warmup := flag.Uint64("warmup", 0, "with -sample: detailed warm-up instructions before each interval, stats discarded (0 = interval/4)")
	period := flag.Uint64("period", 1, "with -sample: simulate every Nth interval and extrapolate the rest (SMARTS sparse measurement; 1 = every interval, cycles stay within the full-coverage bound)")
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "name\tclass\tdescription")
		for _, w := range workload.All() {
			fmt.Fprintf(tw, "%s\t%s\t%s\n", w.Name, w.Class, w.Description)
		}
		tw.Flush()
		return
	}

	w, ok := workload.ByName(*wname)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *wname)
		os.Exit(1)
	}
	hc, ok := mem.ConfigByName(*hier)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown hierarchy %q (have %s)\n", *hier, strings.Join(mem.ConfigNames(), ", "))
		os.Exit(1)
	}
	if *trace && !isMultipass(*model) {
		fmt.Fprintf(os.Stderr, "-trace requires a multipass model (the tracer follows advance/rally mode transitions); model %q has no trace stream\n", *model)
		os.Exit(1)
	}
	if *trace && *sample > 0 {
		fmt.Fprintln(os.Stderr, "-trace and -sample are incompatible (parallel intervals would interleave the event stream)")
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var res *sim.Result
	var err error
	if *trace {
		res, err = runTraced(ctx, bench.ModelName(*model), w, *scale, hc, !*skip)
	} else {
		var pr *bench.Prepared
		pr, err = bench.Prepare(w, *scale)
		opts := sim.ModelOptions{Hier: hc, DisableSkip: !*skip}
		switch {
		case err != nil:
		case *sample > 0:
			scfg := sim.SampleConfig{Interval: *sample, Warmup: *warmup, Workers: *par, Period: *period}
			res, err = pr.RunSampled(ctx, bench.ModelName(*model), opts, scfg)
		default:
			res, err = pr.RunOpts(ctx, bench.ModelName(*model), opts)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *jsonOut {
		data, err := json.MarshalIndent(&res.Stats, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	printResult(*wname, *model, *hier, res)
}

func printResult(w, model, hier string, res *sim.Result) {
	s := &res.Stats
	fmt.Printf("%s on %s (%s hierarchy)\n\n", w, model, hier)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cycles\t%d\n", s.Cycles)
	fmt.Fprintf(tw, "retired\t%d\n", s.Retired)
	fmt.Fprintf(tw, "IPC\t%.3f\n", s.IPC())
	for k := sim.StallKind(0); int(k) < sim.NumStallKinds; k++ {
		fmt.Fprintf(tw, "cycles[%s]\t%d (%.1f%%)\n", k, s.Cat[k], 100*float64(s.Cat[k])/float64(s.Cycles))
	}
	fmt.Fprintf(tw, "branch accuracy\t%.2f%%\n", 100*s.Branch.Accuracy())
	fmt.Fprintf(tw, "L1D miss rate\t%.2f%%\n", 100*s.Memory.L1D.MissRate())
	fmt.Fprintf(tw, "L2 miss rate\t%.2f%%\n", 100*s.Memory.L2.MissRate())
	fmt.Fprintf(tw, "L3 miss rate\t%.2f%%\n", 100*s.Memory.L3.MissRate())
	fmt.Fprintf(tw, "MSHR stalls\t%d\n", s.Memory.MSHRStalls)
	for _, ph := range res.Phases {
		fmt.Fprintf(tw, "wall[%s]\t%s\n", ph.Name, ph.Dur)
	}
	if mp := s.Multipass; mp.AdvanceEntries > 0 {
		fmt.Fprintf(tw, "advance entries\t%d\n", mp.AdvanceEntries)
		fmt.Fprintf(tw, "advance passes\t%d\n", mp.AdvancePasses)
		fmt.Fprintf(tw, "advance restarts\t%d\n", mp.Restarts)
		fmt.Fprintf(tw, "advance executed\t%d\n", mp.AdvanceExecuted)
		fmt.Fprintf(tw, "advance deferred\t%d\n", mp.AdvanceDeferred)
		fmt.Fprintf(tw, "RS merges\t%d\n", mp.Merged)
		fmt.Fprintf(tw, "spec loads (S-bit)\t%d\n", mp.SpecLoads)
		fmt.Fprintf(tw, "spec flushes\t%d\n", mp.SpecFlushes)
		fmt.Fprintf(tw, "ASC hits\t%d\n", mp.ASCHits)
		fmt.Fprintf(tw, "early-resolved branches\t%d\n", mp.EarlyResolved)
		fmt.Fprintf(tw, "mode cycles (arch/adv/rally)\t%d/%d/%d\n", mp.ArchCycles, mp.AdvanceCycles, mp.RallyCycles)
	}
	if ra := s.Runahead; ra.Episodes > 0 {
		fmt.Fprintf(tw, "runahead episodes\t%d\n", ra.Episodes)
		fmt.Fprintf(tw, "runahead pre-executed\t%d\n", ra.PreExecuted)
		fmt.Fprintf(tw, "runahead cycles\t%d\n", ra.Cycles)
	}
	if oo := s.OOO; oo.Flushes > 0 || oo.WindowFullCy > 0 {
		fmt.Fprintf(tw, "OOO flushes\t%d\n", oo.Flushes)
		fmt.Fprintf(tw, "OOO squashed\t%d\n", oo.Squashed)
		fmt.Fprintf(tw, "OOO window-full events\t%d\n", oo.WindowFullCy)
	}
	tw.Flush()
}
