// Package multipass is the root of a from-scratch reproduction of
// "Flea-flicker" Multipass Pipelining: An Alternative to the High-Power
// Out-of-Order Offense (Barnes, Ryoo, Hwu; MICRO-38, 2005).
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; cmd/experiments does the same from the command line.
package multipass
